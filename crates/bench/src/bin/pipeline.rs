//! `pipeline` — end-to-end tiny-pipeline probe feeding
//! `results/BENCH_pipeline.json`.
//!
//! Runs a miniature pretrain → encode → fine-tune → execute pipeline
//! twice — with tracing disabled (the default production configuration)
//! and with a JSONL trace sink installed — and appends best-of-N phase
//! timings plus the traced run's metric counters to the trajectory file.
//! Comparing the `obs_off` rows against the `pre_obs` baseline rows
//! demonstrates the disabled-path overhead bound; the `obs_on` rows
//! record what full tracing costs.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use preqr::{PreqrConfig, SqlBert};
use preqr_bench::trajectory::{append, PipelineEntry};
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads::{self, LabeledQuery};
use preqr_engine::{execute, BitmapSampler, CostModel, Database};
use preqr_obs as obs;
use preqr_sql::ast::Query;
use preqr_tasks::estimation::{train_preqr, Target};
use preqr_tasks::setup::value_buckets_from_db;

const REPS: usize = 3;

struct Tiny {
    db: Database,
    corpus: Vec<Query>,
    train: Vec<LabeledQuery>,
    valid: Vec<LabeledQuery>,
}

fn tiny() -> Tiny {
    let db = generate(ImdbConfig::tiny());
    let corpus = workloads::pretrain_corpus(&db, 120, 7);
    let cost_model = CostModel::default();
    let train = workloads::label(&db, &workloads::synthetic(&db, 60, 21), &cost_model);
    let valid = workloads::label(&db, &workloads::synthetic(&db, 12, 22), &cost_model);
    Tiny { db, corpus, train, valid }
}

fn best_of<F: FnMut() -> ()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Runs the four pipeline phases once, returning per-phase best-of-N
/// wall-clock seconds.
fn run_phases(t: &Tiny) -> Vec<(&'static str, f64)> {
    let buckets = value_buckets_from_db(&t.db, 8);
    let mut model = SqlBert::new(&t.corpus, t.db.schema(), buckets, PreqrConfig::test());
    let mut out = Vec::new();

    let pretrain = best_of(|| {
        let stats = model.pretrain(&t.corpus, 2, 1e-3);
        assert!(stats.iter().all(|s| s.loss.is_finite()));
    });
    out.push(("pretrain", pretrain));

    let encode = best_of(|| {
        for q in t.corpus.iter().take(40) {
            let m = model.encode(q);
            assert!(m.get(0, 0).is_finite());
        }
    });
    out.push(("encode", encode));

    let sampler = BitmapSampler::new(&t.db, 16, 1);
    let finetune = best_of(|| {
        let p = train_preqr(
            &t.db,
            &model,
            Some(&sampler),
            &t.train,
            &t.valid,
            Target::Cardinality,
            2,
            7,
            "PreQR",
        );
        assert!(!p.history.is_empty());
    });
    out.push(("finetune", finetune));

    let exec = best_of(|| {
        let mut rows = 0usize;
        for lq in &t.train {
            if let Ok(r) = execute(&t.db, &lq.query) {
                rows += r.rows.len();
            }
        }
        assert!(rows > 0);
    });
    out.push(("execute", exec));
    out
}

fn main() {
    let threads: usize =
        std::env::var("PREQR_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(1);
    preqr_nn::parallel::set_thread_override(Some(threads));
    let t = tiny();
    let mut entries = Vec::new();

    // Warm-up: fault in the worker pool and allocator before timing, so
    // the first timed pass isn't charged for one-time setup.
    {
        let buckets = value_buckets_from_db(&t.db, 8);
        let mut warm = SqlBert::new(&t.corpus, t.db.schema(), buckets, PreqrConfig::test());
        warm.pretrain(&t.corpus[..20], 1, 2e-3);
    }

    // Pass 1: tracing disabled (the default) — the overhead-bound rows.
    obs::clear_sink();
    obs::set_metrics_enabled(false);
    eprintln!("[pipeline] timing with tracing disabled ({threads} threads)…");
    for (phase, secs) in run_phases(&t) {
        eprintln!("[pipeline]   {phase}: {secs:.3}s");
        entries.push(PipelineEntry {
            label: "obs_off".into(),
            phase: phase.into(),
            threads,
            trace: false,
            seconds: secs,
            counters: vec![],
        });
    }

    // Pass 2: JSONL sink installed, metrics on — what full tracing costs.
    let trace_path = Path::new("results").join("pipeline_trace.jsonl");
    std::fs::create_dir_all("results").expect("create results/");
    let sink = obs::JsonlSink::create(&trace_path).expect("create trace sink");
    obs::reset_metrics();
    obs::install_sink(Arc::new(sink));
    eprintln!("[pipeline] timing with tracing enabled…");
    let timed = run_phases(&t);
    obs::flush_metrics();
    obs::clear_sink();
    let snap = obs::snapshot();
    let counters: Vec<(String, u64)> =
        snap.counters.iter().filter(|(_, v)| *v > 0).map(|(k, v)| (k.to_string(), *v)).collect();
    for (phase, secs) in timed {
        eprintln!("[pipeline]   {phase}: {secs:.3}s");
        entries.push(PipelineEntry {
            label: "obs_on".into(),
            phase: phase.into(),
            threads,
            trace: true,
            seconds: secs,
            counters: counters.clone(),
        });
    }

    let out = Path::new("results").join("BENCH_pipeline.json");
    append(&out, &entries).expect("write BENCH_pipeline.json");
    println!("wrote {} ({} new entries)", out.display(), entries.len());
    println!("trace at {}", trace_path.display());
}
