//! `preqr-repro` — facade crate of the PreQR reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use
//! one dependency. The interesting code lives in:
//!
//! * [`preqr`] — the PreQR model (the paper's contribution);
//! * [`preqr_nn`] — the from-scratch autograd/layers substrate;
//! * [`preqr_sql`] / [`preqr_automaton`] / [`preqr_schema`] — the SQL
//!   front-end, SQL2Automaton, and the schema graph;
//! * [`preqr_engine`] — the mini relational engine (ground truth + the
//!   PostgreSQL-style baseline);
//! * [`preqr_data`] — synthetic datasets and workloads;
//! * [`preqr_baselines`] / [`preqr_tasks`] — the paper's baselines and
//!   the downstream task pipelines;
//! * [`preqr_serve`] — the batched SQL-embedding inference service.
//!
//! See `README.md` for the map of reproduction binaries and
//! `EXPERIMENTS.md` for measured-vs-paper results.

#![warn(missing_docs)]
pub use preqr;
pub use preqr_automaton;
pub use preqr_baselines;
pub use preqr_data;
pub use preqr_engine;
pub use preqr_nn;
pub use preqr_schema;
pub use preqr_serve;
pub use preqr_sql;
pub use preqr_tasks;
