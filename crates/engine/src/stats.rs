//! Per-column statistics: equi-depth histograms, most-common values,
//! distinct counts — the inputs of the PostgreSQL-style estimator and of
//! the value-range bucketing of §3.3.2.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::storage::{ColumnData, Database};

/// Number of histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 32;
/// Number of most-common values tracked.
pub const MCV_COUNT: usize = 16;

/// Statistics for one column.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Row count.
    pub rows: u64,
    /// Distinct-value count.
    pub n_distinct: u64,
    /// Min value (numeric columns).
    pub min: Option<f64>,
    /// Max value (numeric columns).
    pub max: Option<f64>,
    /// Equi-depth histogram boundaries (numeric columns):
    /// `boundaries[i]` is the upper edge of bucket `i`.
    pub histogram: Vec<f64>,
    /// Most common values with frequencies (fraction of rows). Numeric
    /// values are stored as f64; strings use their dictionary code.
    pub mcv: Vec<(f64, f64)>,
    /// For string columns: the dictionary size.
    pub dict_size: Option<u64>,
}

impl ColumnStats {
    /// Computes statistics for a column.
    pub fn compute(col: &ColumnData) -> Self {
        match col {
            ColumnData::Int(v) => Self::numeric(v.iter().map(|&x| x as f64).collect::<Vec<f64>>()),
            ColumnData::Float(v) => Self::numeric(v.clone()),
            ColumnData::Str { codes, dict } => {
                let rows = codes.len() as u64;
                let mut freq: HashMap<u32, u64> = HashMap::new();
                for &c in codes {
                    *freq.entry(c).or_default() += 1;
                }
                let mut mcv: Vec<(f64, f64)> =
                    freq.iter().map(|(&c, &n)| (c as f64, n as f64 / rows.max(1) as f64)).collect();
                mcv.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite freq"));
                mcv.truncate(MCV_COUNT);
                Self {
                    rows,
                    n_distinct: freq.len() as u64,
                    min: None,
                    max: None,
                    histogram: Vec::new(),
                    mcv,
                    dict_size: Some(dict.len() as u64),
                }
            }
        }
    }

    fn numeric(mut values: Vec<f64>) -> Self {
        let rows = values.len() as u64;
        let mut freq: HashMap<u64, u64> = HashMap::new();
        for &v in &values {
            *freq.entry(v.to_bits()).or_default() += 1;
        }
        let n_distinct = freq.len() as u64;
        let mut mcv: Vec<(f64, f64)> = freq
            .iter()
            .map(|(&bits, &n)| (f64::from_bits(bits), n as f64 / rows.max(1) as f64))
            .collect();
        mcv.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite freq")
                .then(a.0.partial_cmp(&b.0).expect("finite value"))
        });
        mcv.truncate(MCV_COUNT);
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let (min, max) = match (values.first(), values.last()) {
            (Some(&a), Some(&b)) => (Some(a), Some(b)),
            _ => (None, None),
        };
        let mut histogram = Vec::with_capacity(HISTOGRAM_BUCKETS);
        if !values.is_empty() {
            for i in 1..=HISTOGRAM_BUCKETS {
                let idx = (i * values.len() / HISTOGRAM_BUCKETS).saturating_sub(1);
                histogram.push(values[idx.min(values.len() - 1)]);
            }
        }
        Self { rows, n_distinct, min, max, histogram, mcv, dict_size: None }
    }

    /// Estimated fraction of rows with value `<= v` from the histogram,
    /// with linear interpolation inside a bucket.
    pub fn fraction_le(&self, v: f64) -> f64 {
        if self.histogram.is_empty() {
            return 0.5;
        }
        let (min, max) = (self.min.unwrap_or(0.0), self.max.unwrap_or(0.0));
        if v < min {
            return 0.0;
        }
        if v >= max {
            return 1.0;
        }
        let k = self.histogram.len();
        let mut lower = min;
        for (i, &edge) in self.histogram.iter().enumerate() {
            if v <= edge {
                let within = if edge > lower { (v - lower) / (edge - lower) } else { 1.0 };
                return (i as f64 + within.clamp(0.0, 1.0)) / k as f64;
            }
            lower = edge;
        }
        1.0
    }

    /// Estimated selectivity of an equality predicate against `v`.
    pub fn eq_selectivity(&self, v: f64) -> f64 {
        for &(val, f) in &self.mcv {
            if val == v {
                return f;
            }
        }
        if self.n_distinct == 0 {
            return 0.0;
        }
        // Mass not covered by MCVs spread over the remaining distinct values.
        let mcv_mass: f64 = self.mcv.iter().map(|(_, f)| f).sum();
        let rest = (self.n_distinct as f64 - self.mcv.len() as f64).max(1.0);
        ((1.0 - mcv_mass) / rest).clamp(1e-9, 1.0)
    }
}

/// Statistics for every column of a database.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TableStats {
    columns: HashMap<(String, String), ColumnStats>,
    row_counts: HashMap<String, u64>,
}

impl TableStats {
    /// Analyzes the whole database.
    pub fn analyze(db: &Database) -> Self {
        let mut columns = HashMap::new();
        let mut row_counts = HashMap::new();
        for t in db.schema().tables() {
            row_counts.insert(t.name.clone(), db.row_count(&t.name) as u64);
            for c in &t.columns {
                let col = db.column(&t.name, &c.name).expect("schema column has data");
                columns.insert((t.name.clone(), c.name.clone()), ColumnStats::compute(col));
            }
        }
        Self { columns, row_counts }
    }

    /// Stats for one column.
    pub fn column(&self, table: &str, column: &str) -> Option<&ColumnStats> {
        self.columns.get(&(table.to_string(), column.to_string()))
    }

    /// Row count of a table.
    pub fn row_count(&self, table: &str) -> u64 {
        self.row_counts.get(table).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Datum;
    use preqr_schema::{Column, ColumnType, Schema, Table};

    fn db() -> Database {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "t",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("skewed", ColumnType::Int),
                Column::new("name", ColumnType::Varchar),
            ],
        ));
        let mut db = Database::new(s);
        for i in 0..1000i64 {
            // `skewed`: value 7 half the time, else uniform 0..100.
            let sk = if i % 2 == 0 { 7 } else { i % 100 };
            db.insert("t", &[Datum::Int(i), Datum::Int(sk), Datum::Str(format!("n{}", i % 10))]);
        }
        db
    }

    #[test]
    fn analyze_covers_all_columns() {
        let stats = TableStats::analyze(&db());
        assert_eq!(stats.row_count("t"), 1000);
        assert!(stats.column("t", "id").is_some());
        assert!(stats.column("t", "name").is_some());
        assert!(stats.column("t", "missing").is_none());
    }

    #[test]
    fn uniform_column_histogram_fractions() {
        let stats = TableStats::analyze(&db());
        let id = stats.column("t", "id").unwrap();
        assert_eq!(id.n_distinct, 1000);
        assert_eq!(id.min, Some(0.0));
        assert_eq!(id.max, Some(999.0));
        let f = id.fraction_le(499.0);
        assert!((f - 0.5).abs() < 0.05, "fraction_le(499)={f}");
        assert_eq!(id.fraction_le(-5.0), 0.0);
        assert_eq!(id.fraction_le(2000.0), 1.0);
    }

    #[test]
    fn mcv_catches_heavy_hitter() {
        let stats = TableStats::analyze(&db());
        let sk = stats.column("t", "skewed").unwrap();
        let sel = sk.eq_selectivity(7.0);
        assert!(sel > 0.45 && sel < 0.60, "heavy hitter selectivity {sel}");
        let rare = sk.eq_selectivity(99.0);
        assert!(rare < 0.02, "rare value selectivity {rare}");
    }

    #[test]
    fn string_stats_have_dict_size() {
        let stats = TableStats::analyze(&db());
        let name = stats.column("t", "name").unwrap();
        assert_eq!(name.n_distinct, 10);
        assert_eq!(name.dict_size, Some(10));
        // Every value occurs with frequency 0.1.
        assert!((name.mcv[0].1 - 0.1).abs() < 1e-9);
    }

    #[test]
    fn eq_selectivity_unseen_value_is_small_but_positive() {
        let stats = TableStats::analyze(&db());
        let id = stats.column("t", "id").unwrap();
        let sel = id.eq_selectivity(123456.0);
        assert!(sel > 0.0 && sel < 0.01);
    }

    #[test]
    fn empty_column_stats_are_sane() {
        let mut s = Schema::new();
        s.add_table(Table::new("e", vec![Column::new("x", ColumnType::Int)]));
        let db = Database::new(s);
        let stats = TableStats::analyze(&db);
        let x = stats.column("e", "x").unwrap();
        assert_eq!(x.rows, 0);
        assert_eq!(x.fraction_le(1.0), 0.5);
        assert_eq!(x.eq_selectivity(1.0), 0.0);
    }
}
