//! Layer normalization.

use crate::layers::{join, Module};
use crate::matrix::Matrix;
use crate::ops;
use crate::tensor::Tensor;

/// Layer normalization with learned per-feature scale and shift (Ba et al.,
/// cited by the paper for the post-sublayer normalization of `Trm_g`).
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer-norm over `dim` features (γ=1, β=0).
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Tensor::param(Matrix::full(1, dim, 1.0)),
            beta: Tensor::param(Matrix::zeros(1, dim)),
            eps: 1e-5,
        }
    }

    /// Normalizes each row of `x`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        ops::layer_norm(x, &self.gamma, &self.beta, self.eps)
    }
}

impl Module for LayerNorm {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        out.push((join(prefix, "gamma"), self.gamma.clone()));
        out.push((join(prefix, "beta"), self.beta.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_standardized_at_init() {
        let ln = LayerNorm::new(4);
        let x = Tensor::constant(Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let y = ln.forward(&x).value_clone();
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = y.row(0).iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn has_two_params() {
        let ln = LayerNorm::new(8);
        assert_eq!(ln.named_params("ln").len(), 2);
        assert_eq!(ln.param_count(), 16);
    }
}
