//! Learning-rate schedules.

use preqr_nn::optim::WarmupLinearSchedule;

/// A pluggable learning-rate schedule, evaluated per optimizer step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Schedule {
    /// The base learning rate at every step.
    Constant,
    /// Linear warmup to the base rate, then linear decay to zero (the
    /// BERT schedule; delegates to
    /// [`preqr_nn::optim::WarmupLinearSchedule`] bit-for-bit).
    WarmupLinear {
        /// Steps spent warming up.
        warmup_steps: u64,
        /// Step at which the rate reaches zero.
        total_steps: u64,
    },
    /// Half-cosine decay from the base rate to zero over `total_steps`.
    Cosine {
        /// Step at which the rate reaches zero.
        total_steps: u64,
    },
}

impl Schedule {
    /// The learning rate at `step` for a given base rate.
    pub fn lr_at(&self, base_lr: f32, step: u64) -> f32 {
        match *self {
            Schedule::Constant => base_lr,
            Schedule::WarmupLinear { warmup_steps, total_steps } => {
                WarmupLinearSchedule::new(base_lr, warmup_steps, total_steps).lr_at(step)
            }
            Schedule::Cosine { total_steps } => {
                let frac = (step as f32 / total_steps.max(1) as f32).min(1.0);
                base_lr * 0.5 * (1.0 + (std::f32::consts::PI * frac).cos())
            }
        }
    }

    /// The BERT-style warmup-linear schedule sized for an epoch plan:
    /// 5 % warmup (plus one step) over the exact step count.
    pub fn bert(epochs: usize, n_examples: usize, chunk: usize) -> Schedule {
        let total_steps = scheduled_steps(epochs, n_examples, chunk).max(1);
        Schedule::WarmupLinear { warmup_steps: total_steps / 20 + 1, total_steps }
    }
}

/// The exact number of optimizer steps an epoch plan takes:
/// `epochs × ⌈n / chunk⌉`.
///
/// This replaces the old `epochs * n.max(1) / 8 + 1` expression in
/// `SqlBert::pretrain`, which disagreed with the real chunk count
/// whenever `n % chunk != 0` and made the warmup-linear schedule end
/// early or late (tail steps trained at the wrong rate).
pub fn scheduled_steps(epochs: usize, n_examples: usize, chunk: usize) -> u64 {
    epochs as u64 * (n_examples as u64).div_ceil(chunk.max(1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        for step in [0, 1, 10, 1_000_000] {
            assert_eq!(Schedule::Constant.lr_at(3e-4, step), 3e-4);
        }
    }

    #[test]
    fn warmup_linear_matches_nn_schedule_bitwise() {
        let s = Schedule::WarmupLinear { warmup_steps: 7, total_steps: 91 };
        let nn = WarmupLinearSchedule::new(0.02, 7, 91);
        for step in 0..100 {
            assert_eq!(s.lr_at(0.02, step).to_bits(), nn.lr_at(step).to_bits(), "step {step}");
        }
    }

    #[test]
    fn cosine_decays_monotonically_to_zero() {
        let s = Schedule::Cosine { total_steps: 50 };
        assert_eq!(s.lr_at(1.0, 0), 1.0);
        let mut prev = f32::INFINITY;
        for step in 0..=50 {
            let lr = s.lr_at(1.0, step);
            assert!(lr <= prev, "cosine must not increase: step {step}");
            prev = lr;
        }
        assert!(s.lr_at(1.0, 50).abs() < 1e-6);
        assert!(s.lr_at(1.0, 500).abs() < 1e-6, "past the horizon the rate stays zero");
    }

    #[test]
    fn scheduled_steps_counts_real_chunks() {
        // The regression the old formula got wrong: len % chunk != 0.
        assert_eq!(scheduled_steps(3, 10, 8), 3 * 2, "ceil(10/8) = 2 chunks per epoch");
        assert_eq!(scheduled_steps(1, 8, 8), 1);
        assert_eq!(scheduled_steps(5, 0, 8), 0, "empty corpus takes no steps");
        assert_eq!(scheduled_steps(2, 17, 4), 2 * 5);
        // The old expression: epochs * n.max(1) / 8 + 1.
        let old = |epochs: usize, n: usize| (epochs * n.max(1) / 8 + 1) as u64;
        assert_ne!(scheduled_steps(3, 10, 8), old(3, 10), "old formula was off for 10 % 8 != 0");
        assert_ne!(scheduled_steps(1, 8, 8), old(1, 8), "old formula over-counted exact multiples");
    }
}
