//! Thread-pool-backed parallel execution layer for the dense kernels.
//!
//! A lazily-initialized, persistent worker pool distributes row-partitioned
//! work across OS threads. Sizing comes from the `PREQR_THREADS` environment
//! variable (read once at first dispatch and cached — `std::env::var` takes a
//! process-global lock, too costly for hot kernels), falling back to
//! [`std::thread::available_parallelism`]. Tests and benchmarks change the
//! width at runtime through [`set_thread_override`] instead.
//!
//! # Panic safety
//!
//! Dispatching functions hand pool workers lifetime-erased pointers to
//! stack-borrowed closures, so they must never return — including by
//! unwinding — while a worker may still touch the closure. A [`WaitGuard`]
//! blocks on the completion latch from `Drop`, which runs even when the
//! dispatcher's own inline chunk (or the left side of [`join`]) panics.
//! Worker-side panics are caught, flagged, and re-raised at the dispatch
//! site once every task has finished.
//!
//! # Nesting
//!
//! A dispatch from inside a pool worker runs inline on that worker instead
//! of re-entering the pool: a worker blocked in a latch wait never drains
//! the queue, so nested dispatch could otherwise leave every worker waiting
//! on inner jobs that no free worker will ever run.
//!
//! # Determinism contract
//!
//! Every kernel built on this module partitions work by **output rows**: a
//! given output element is always produced by exactly one task, using exactly
//! the same sequence of floating-point operations as the retained serial
//! reference kernels (`Matrix::matmul_serial` and friends). Thread count
//! therefore never changes results — parallel and serial outputs are
//! bit-identical, and seeded runs reproduce the same numbers under any
//! `PREQR_THREADS`.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use preqr_obs as obs;

/// Minimum number of fused multiply-adds (`m·k·n`) before a matmul-family
/// kernel takes the packed/parallel fast path.
pub const PAR_MIN_FMAS: usize = 1 << 16;

/// Minimum element count before an element-wise / row-wise kernel
/// (softmax, layer-norm, map) is dispatched to the pool.
pub const PAR_MIN_ELEMS: usize = 1 << 15;

/// Completion latch: the dispatching thread blocks until every job handed to
/// the pool for one call has finished, which is what makes lifetime-erased
/// borrowed closures sound (see [`TaskRef`]).
struct Latch {
    remaining: Mutex<usize>,
    cond: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            cond: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock();
        *left -= 1;
        if *left == 0 {
            self.cond.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock();
        while *left > 0 {
            self.cond.wait(&mut left);
        }
    }
}

/// Blocks on the latch when dropped — including during unwinding. Holding
/// one across the dispatcher's own inline work is what keeps the
/// lifetime-erased [`TaskRef`] sound when that work panics: the unwind
/// cannot pop the borrowed closure's frame until every worker is done.
struct WaitGuard<'a> {
    latch: &'a Latch,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.latch.wait();
    }
}

thread_local! {
    /// True on pool worker threads; see the module-level "Nesting" notes.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(Cell::get)
}

/// Lifetime-erased pointer to a caller-owned `Fn(Range<usize>) + Sync`
/// closure. Safety: the dispatching call blocks on the job's [`Latch`]
/// before returning, so the pointee strictly outlives every use.
struct TaskRef(*const (dyn Fn(Range<usize>) + Sync));

// SAFETY: the pointee is `Sync` (shared access from any thread is fine) and
// is kept alive by the dispatcher until the latch opens.
unsafe impl Send for TaskRef {}

impl TaskRef {
    /// Erases the borrow's lifetime so the job can cross the channel. The
    /// raw-pointer trait object defaults to `'static`, which a borrowed
    /// closure can't coerce to, hence the explicit transmute.
    ///
    /// SAFETY (caller): must block on the job's latch before the borrow ends.
    unsafe fn erase<'a>(task: &'a (dyn Fn(Range<usize>) + Sync + 'a)) -> Self {
        TaskRef(std::mem::transmute::<
            *const (dyn Fn(Range<usize>) + Sync + 'a),
            *const (dyn Fn(Range<usize>) + Sync + 'static),
        >(task))
    }
}

struct Job {
    task: TaskRef,
    range: Range<usize>,
    latch: Arc<Latch>,
}

struct Pool {
    tx: Sender<Job>,
    rx: Receiver<Job>,
    spawned: Mutex<usize>,
}

impl Pool {
    /// Grows the pool to at least `want` resident workers.
    fn ensure_workers(&'static self, want: usize) {
        let mut spawned = self.spawned.lock();
        while *spawned < want {
            let rx = self.rx.clone();
            let id = *spawned;
            std::thread::Builder::new()
                .name(format!("preqr-worker-{id}"))
                .spawn(move || worker_loop(rx))
                .expect("failed to spawn preqr worker thread");
            *spawned += 1;
        }
    }
}

fn worker_loop(rx: Receiver<Job>) {
    IN_POOL_WORKER.with(|flag| flag.set(true));
    while let Ok(job) = rx.recv() {
        // SAFETY: see `TaskRef` — the dispatcher keeps the closure alive
        // until the latch opens.
        let task = unsafe { &*job.task.0 };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(job.range)));
        if result.is_err() {
            job.latch.panicked.store(true, Ordering::Release);
        }
        job.latch.count_down();
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (tx, rx) = unbounded();
        Pool { tx, rx, spawned: Mutex::new(0) }
    })
}

/// Process-wide test/bench override for the thread count; `0` means unset.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the thread count for subsequent kernel dispatches (benchmarks
/// sweep this; tests pin it). `None` restores the cached
/// `PREQR_THREADS`/hardware default. Results are unaffected either way —
/// see the module docs.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Release);
}

/// Parses a `PREQR_THREADS` value; `0`, empty, and garbage mean "unset".
fn parse_thread_count(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Default width when no override is set: `PREQR_THREADS`, else
/// [`std::thread::available_parallelism`]. Computed once and cached —
/// `std::env::var` takes a process-global lock, which every hot kernel
/// dispatch would otherwise contend on.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("PREQR_THREADS").ok().and_then(|v| parse_thread_count(&v)).unwrap_or_else(
            || std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
        )
    })
}

/// Number of threads a dispatch may use right now: the override if set,
/// else the cached `PREQR_THREADS`/hardware default ([`default_threads`]).
pub fn effective_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::Acquire);
    if over > 0 {
        return over;
    }
    default_threads()
}

/// Splits `0..rows` into at most [`effective_threads`] contiguous chunks of
/// at least `min_rows` rows and runs `f` on each, using the worker pool for
/// all but the last chunk (which runs on the calling thread). Returns after
/// every chunk has completed. With one thread (or one chunk) this is a plain
/// inline call — no pool traffic at all. Calls from inside a pool worker
/// also run inline (see the module-level "Nesting" notes), so `f` may itself
/// dispatch parallel kernels without deadlocking.
pub fn for_each_row_chunk(rows: usize, min_rows: usize, f: impl Fn(Range<usize>) + Sync) {
    if rows == 0 {
        return;
    }
    let threads = effective_threads();
    let max_chunks = rows.div_ceil(min_rows.max(1));
    let chunks = threads.min(max_chunks).max(1);
    if chunks == 1 || in_pool_worker() {
        obs::counter_add(obs::Metric::NnDispatchInline, 1);
        f(0..rows);
        return;
    }
    obs::counter_add(obs::Metric::NnDispatchPool, 1);
    let pool = pool();
    pool.ensure_workers(chunks - 1);
    let latch = Arc::new(Latch::new(chunks - 1));
    let task: &(dyn Fn(Range<usize>) + Sync) = &f;
    let base = rows / chunks;
    let rem = rows % chunks;
    // SAFETY: once any job is in flight, this function must not return —
    // even by unwinding — until every worker has finished with `task`. The
    // guard's Drop blocks on the latch, so a panic in the inline chunk
    // below still waits for the workers before the closure's frame is
    // popped. (A send failure would hang in the guard instead of unwinding
    // unsoundly, but the pool's receiver lives forever, so send can't fail.)
    let guard = WaitGuard { latch: &latch };
    let mut start = 0usize;
    let mut inline = 0..0;
    for c in 0..chunks {
        let end = start + base + usize::from(c < rem);
        if c == chunks - 1 {
            inline = start..end;
        } else {
            let job = Job {
                task: unsafe { TaskRef::erase(task) },
                range: start..end,
                latch: latch.clone(),
            };
            pool.tx.send(job).expect("preqr worker pool channel closed");
        }
        start = end;
    }
    f(inline);
    drop(guard);
    assert!(!latch.panicked.load(Ordering::Acquire), "a preqr worker task panicked");
}

/// Row-partitioned mutable variant: treats `buf` as a `rows × row_width`
/// row-major buffer, hands each task its disjoint `[start_row, slice]`
/// chunk, and blocks until all chunks are done.
pub fn for_each_row_chunk_mut(
    buf: &mut [f32],
    row_width: usize,
    min_rows: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if buf.is_empty() {
        return;
    }
    assert!(row_width > 0 && buf.len() % row_width == 0, "buffer is not rows × row_width");
    let rows = buf.len() / row_width;
    let base = SharedMut::new(buf.as_mut_ptr());
    for_each_row_chunk(rows, min_rows, |range| {
        // SAFETY: row ranges from `for_each_row_chunk` are disjoint, so each
        // task gets exclusive access to its rows; the dispatch blocks until
        // completion, so `buf` outlives every task.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(
                base.get().add(range.start * row_width),
                range.len() * row_width,
            )
        };
        f(range.start, chunk);
    });
}

/// Runs `a` on the calling thread and `b` on a pool worker, returning both
/// results. Falls back to sequential execution when only one thread is
/// available or when called from inside a pool worker (see the module-level
/// "Nesting" notes).
pub fn join<RA, RB>(a: impl FnOnce() -> RA, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RB: Send,
{
    if effective_threads() < 2 || in_pool_worker() {
        obs::counter_add(obs::Metric::NnJoinInline, 1);
        return (a(), b());
    }
    obs::counter_add(obs::Metric::NnJoinPool, 1);
    let pool = pool();
    pool.ensure_workers(1);
    let latch = Arc::new(Latch::new(1));
    let b_fn = Mutex::new(Some(b));
    let b_out: Mutex<Option<RB>> = Mutex::new(None);
    let wrapper = |_: Range<usize>| {
        if let Some(g) = b_fn.lock().take() {
            *b_out.lock() = Some(g());
        }
    };
    let task: &(dyn Fn(Range<usize>) + Sync) = &wrapper;
    // SAFETY: the guard's Drop blocks on the latch, keeping `wrapper` (and
    // its borrows of `b_fn`/`b_out`) alive past the worker's last use even
    // when `a()` panics and unwinds through this frame.
    let guard = WaitGuard { latch: &latch };
    pool.tx
        .send(Job { task: unsafe { TaskRef::erase(task) }, range: 0..0, latch: latch.clone() })
        .expect("preqr worker pool channel closed");
    let ra = a();
    drop(guard);
    assert!(!latch.panicked.load(Ordering::Acquire), "a preqr join task panicked");
    let rb = b_out.into_inner().expect("join task did not run");
    (ra, rb)
}

/// Shareable raw base pointer for disjoint-range writes from pool tasks.
/// Used by kernels that scatter into several buffers at once (e.g.
/// layer-norm writes `out`, `xhat`, and `inv_std` per row).
pub(crate) struct SharedMut<T>(*mut T);

// SAFETY: callers only dereference disjoint index ranges per task and the
// dispatching call blocks until all tasks complete.
unsafe impl<T> Send for SharedMut<T> {}
unsafe impl<T> Sync for SharedMut<T> {}

impl<T> SharedMut<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        Self(ptr)
    }

    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The override and `PREQR_THREADS` are process-global; tests that
    /// mutate them must not interleave.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn chunked_fill_covers_every_row_once() {
        let _g = global_lock();
        let rows = 37;
        let width = 5;
        let mut buf = vec![0.0f32; rows * width];
        set_thread_override(Some(4));
        for_each_row_chunk_mut(&mut buf, width, 1, |start, chunk| {
            for (i, row) in chunk.chunks_exact_mut(width).enumerate() {
                for v in row.iter_mut() {
                    *v += (start + i) as f32;
                }
            }
        });
        set_thread_override(None);
        for r in 0..rows {
            for c in 0..width {
                assert_eq!(buf[r * width + c], r as f32, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn join_returns_both_results() {
        let _g = global_lock();
        set_thread_override(Some(2));
        let (a, b) = join(|| 21 * 2, || "right".to_string());
        set_thread_override(None);
        assert_eq!(a, 42);
        assert_eq!(b, "right");
    }

    #[test]
    fn single_thread_runs_inline() {
        let _g = global_lock();
        set_thread_override(Some(1));
        let caller = std::thread::current().id();
        let mut seen = Vec::new();
        for_each_row_chunk(10, 1, |range| {
            assert_eq!(std::thread::current().id(), caller);
            let _ = &range;
        });
        set_thread_override(None);
        seen.push(1);
        assert_eq!(seen.len(), 1);
    }

    #[test]
    fn thread_count_parsing() {
        assert_eq!(parse_thread_count("3"), Some(3));
        assert_eq!(parse_thread_count(" 8 "), Some(8));
        assert_eq!(parse_thread_count("0"), None);
        assert_eq!(parse_thread_count("not-a-number"), None);
        assert_eq!(parse_thread_count(""), None);
    }

    #[test]
    fn default_sizing_is_cached_and_positive() {
        let _g = global_lock();
        set_thread_override(None);
        let first = effective_threads();
        assert!(first >= 1);
        // The env var is read once at first dispatch; later changes are
        // deliberately ignored (the override is the runtime knob).
        std::env::set_var("PREQR_THREADS", "999");
        assert_eq!(effective_threads(), first);
        std::env::remove_var("PREQR_THREADS");
        set_thread_override(Some(2));
        assert_eq!(effective_threads(), 2);
        set_thread_override(None);
    }

    #[test]
    fn panic_in_inline_chunk_waits_for_workers() {
        let _g = global_lock();
        set_thread_override(Some(4));
        let rows_seen = Arc::new(AtomicUsize::new(0));
        let rows = 16;
        let seen = rows_seen.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for_each_row_chunk(rows, 1, |range| {
                seen.fetch_add(range.len(), Ordering::SeqCst);
                // The calling thread always runs the last chunk.
                if range.end == rows {
                    panic!("inline chunk boom");
                }
            });
        }));
        set_thread_override(None);
        assert!(result.is_err(), "inline panic must propagate");
        // Every worker chunk finished before the dispatcher unwound — the
        // WaitGuard held the closure's frame alive until the latch opened.
        assert_eq!(rows_seen.load(Ordering::SeqCst), rows);
    }

    #[test]
    fn worker_panic_is_reraised_at_dispatch_site() {
        let _g = global_lock();
        set_thread_override(Some(4));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for_each_row_chunk(16, 1, |range| {
                // The first chunk always goes to a pool worker.
                if range.start == 0 {
                    panic!("worker boom");
                }
            });
        }));
        set_thread_override(None);
        assert!(result.is_err(), "worker panic must re-raise on the dispatcher");
    }

    #[test]
    fn join_waits_for_pool_task_when_left_side_panics() {
        let _g = global_lock();
        set_thread_override(Some(2));
        let done = Arc::new(AtomicBool::new(false));
        let done_in_task = done.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            join(
                || panic!("left boom"),
                move || {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    done_in_task.store(true, Ordering::SeqCst);
                },
            );
        }));
        set_thread_override(None);
        assert!(result.is_err(), "left-side panic must propagate");
        assert!(
            done.load(Ordering::SeqCst),
            "join unwound before the pool task finished with its borrows"
        );
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let _g = global_lock();
        set_thread_override(Some(2));
        let cells = AtomicUsize::new(0);
        for_each_row_chunk(8, 1, |outer| {
            for_each_row_chunk(4, 1, |inner| {
                cells.fetch_add(outer.len() * inner.len(), Ordering::Relaxed);
            });
        });
        // The right side runs on a pool worker; its nested join must run
        // inline there instead of waiting on the (busy) pool.
        let (a, b) = join(|| 3, || join(|| 1, || 2));
        set_thread_override(None);
        // Each outer chunk's inner dispatch covers all 4 inner rows.
        assert_eq!(cells.load(Ordering::Relaxed), 8 * 4);
        assert_eq!((a, b), (3, (1, 2)));
    }
}
