//! The inference service: parse + route at admission → per-shard bounded
//! queue → micro-batcher → batched tape-free encoder → per-shard template
//! cache slice, on `shards` dedicated worker threads.
//!
//! # Determinism contract
//!
//! Responses are a function of the *submission order* alone, for every
//! shard count:
//!
//! * Embeddings are bit-identical no matter how requests land in
//!   micro-batches or shards, because `SqlBert::encode_batch` is
//!   batch-invariant and every shard replays cache operations strictly
//!   in its FIFO order.
//! * Requests are routed by a fixed hash of their normalized template
//!   ([`crate::router`]), so one template's cache entry and counters
//!   live on exactly one shard. Absent capacity pressure (no
//!   evictions), per-template hit/miss counts are therefore identical
//!   across shard counts; under eviction pressure they may differ
//!   (shard slices evict independently) while embeddings stay
//!   bit-identical.
//! * Every processed request emits exactly one `serve.request` span
//!   (carrying its shard index), so traced event counts depend on the
//!   request script, never on `max_batch`, `batch_timeout`, `shards`,
//!   worker-pool width, or timing. Batch and shard geometry surface
//!   only through counters and histograms, whose *flush* cost is fixed
//!   by the closed `preqr-obs` registry.
//!
//! # Failure behavior
//!
//! Malformed SQL resolves that request's ticket with a structured
//! [`ServeError::Malformed`] — the owning shard keeps serving. A
//! panicking shard (e.g. a model factory that dies) poisons *only
//! itself*: its queued tickets resolve with [`ServeError::WorkerFailed`]
//! instead of hanging, later submissions routed to it are refused, and
//! sibling shards keep serving their templates. Shutdown stops admission
//! on every shard atomically — a submission can never observe
//! `QueueFull` after any other submission observed `ShuttingDown` — and
//! then drains each shard: every accepted ticket resolves before
//! [`Service::shutdown`] returns.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use preqr::SqlBert;
use preqr_nn::Matrix;
use preqr_obs as obs;
use preqr_sql::normalize::template_text;
use preqr_sql::parser::parse;

use crate::config::ServeConfig;
use crate::router;
use crate::shard::{self, Payload, Pending, ShardState, ShardStats};

/// Why a submission was refused at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The target shard's bounded queue is at capacity — backpressure,
    /// try again later.
    QueueFull,
}

/// Structured serving failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Refused at admission; the request was never queued.
    Rejected(RejectReason),
    /// The SQL text failed to parse.
    Malformed {
        /// Token index where parsing failed.
        position: usize,
        /// Parser diagnostic.
        message: String,
    },
    /// The service no longer accepts work (shutdown in progress).
    ShuttingDown,
    /// The owning shard's worker thread died; the request cannot be
    /// served (sibling shards are unaffected).
    WorkerFailed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(RejectReason::QueueFull) => write!(f, "rejected: queue full"),
            ServeError::Malformed { position, message } => {
                write!(f, "malformed SQL at token {position}: {message}")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::WorkerFailed => write!(f, "serving worker failed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A served embedding.
#[derive(Clone, Debug, PartialEq)]
pub struct Embedding {
    /// The `n_tokens × output_dim` representation matrix.
    pub matrix: Matrix,
    /// Whether the template cache supplied it without a forward pass.
    pub cache_hit: bool,
}

impl Embedding {
    /// The `[CLS]` row — the aggregate query representation.
    pub fn cls(&self) -> &[f32] {
        self.matrix.row(0)
    }
}

/// Outcome of one request.
pub type ServeResult = Result<Embedding, ServeError>;

pub(crate) struct TicketState {
    slot: Mutex<Option<ServeResult>>,
    cv: Condvar,
}

/// Handle to one in-flight request; [`Ticket::wait`] blocks for the
/// response.
pub struct Ticket(Arc<TicketState>);

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let resolved = self.0.slot.lock().unwrap_or_else(|e| e.into_inner()).is_some();
        f.debug_struct("Ticket").field("resolved", &resolved).finish()
    }
}

impl Ticket {
    /// Blocks until the owning shard resolves this request.
    pub fn wait(self) -> ServeResult {
        let mut slot = self.0.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.0.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_take(&self) -> Option<ServeResult> {
        self.0.slot.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

pub(crate) fn resolve(ticket: &Arc<TicketState>, result: ServeResult) {
    let mut slot = ticket.slot.lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(result);
    ticket.cv.notify_all();
}

struct Shared {
    shards: Vec<ShardState>,
    accepted: AtomicU64,
    rejected: AtomicU64,
}

/// Aggregate service statistics, returned by [`Service::shutdown`].
/// Worker-side counters are sums over all shards; see
/// [`Service::shutdown_detailed`] for the per-shard breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submissions accepted into a shard queue.
    pub accepted: u64,
    /// Submissions refused with `QueueFull`.
    pub rejected: u64,
    /// Requests the shards resolved (ok or malformed).
    pub processed: u64,
    /// Requests that failed SQL parsing.
    pub parse_errors: u64,
    /// Micro-batches drained across all shards.
    pub batches: u64,
    /// Encoder forward passes actually run.
    pub encoded: u64,
    /// Template-cache hits (all slices).
    pub cache_hits: u64,
    /// Template-cache misses (all slices).
    pub cache_misses: u64,
    /// Template-cache evictions (all slices).
    pub cache_evictions: u64,
    /// How many shard workers panicked instead of draining cleanly.
    pub failed_shards: u64,
    /// True when any shard worker panicked (`failed_shards > 0`).
    pub worker_panicked: bool,
}

/// The batched, sharded SQL-embedding inference service.
///
/// Construction takes a *model factory* rather than a model: `SqlBert`
/// is intentionally `!Send` (its autograd graph is `Rc`-based), so each
/// shard thread builds — or rebuilds from transferred parameter
/// matrices, which are plain `Send` data — its own replica. Model
/// construction is deterministic given the same corpus/schema/config, so
/// every replica encodes bit-identically to the original.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<ShardStats>>,
    config: ServeConfig,
}

impl Service {
    /// Spawns one worker thread per configured shard. `factory` runs
    /// once on each shard thread (receiving the shard index) and must
    /// produce the model replica that shard serves.
    pub fn spawn<F>(config: ServeConfig, factory: F) -> Service
    where
        F: Fn(usize) -> SqlBert + Send + Sync + 'static,
    {
        let config = config.normalized();
        let shared = Arc::new(Shared {
            shards: (0..config.shards).map(|_| ShardState::new()).collect(),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let factory = Arc::new(factory);
        let workers = (0..config.shards)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let factory = Arc::clone(&factory);
                std::thread::Builder::new()
                    .name(format!("preqr-serve-shard-{i}"))
                    .spawn(move || shard::worker_main(&shared.shards[i], i, &config, &*factory))
                    .expect("spawn serving shard")
            })
            .collect();
        Service { shared, workers, config }
    }

    /// The (normalized) configuration the service runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Submits one SQL text for encoding. The request is parsed and
    /// routed here, on the submitting thread: its normalized template
    /// picks the owning shard ([`crate::router::route`]); text that
    /// fails to parse routes by the raw SQL and resolves with the
    /// structured error in FIFO position. Returns a [`Ticket`] on
    /// admission; rejects with `QueueFull` backpressure when the target
    /// shard's bounded queue is at capacity, `ShuttingDown` after a
    /// drain began, or `WorkerFailed` once the owning shard died.
    pub fn submit(&self, sql: &str) -> Result<Ticket, ServeError> {
        let (shard_idx, payload) = match parse(sql) {
            Ok(query) => {
                let template = template_text(&query);
                let idx = router::route(&template, self.config.shards);
                (idx, Payload::Query { query, template })
            }
            Err(e) => (
                router::route(sql, self.config.shards),
                Payload::Malformed { position: e.position, message: e.message },
            ),
        };
        let shard = &self.shared.shards[shard_idx];
        let mut q = shard.lock();
        // Rejection precedence: poisoned and draining are checked before
        // capacity, under the same lock `shutdown` holds while stopping
        // admission — once any caller has seen `ShuttingDown`, no caller
        // can see `QueueFull`.
        if q.poisoned {
            return Err(ServeError::WorkerFailed);
        }
        if q.draining {
            return Err(ServeError::ShuttingDown);
        }
        if q.items.len() >= self.config.shard_queue_capacity() {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            obs::counter_add(obs::Metric::ServeRejected, 1);
            return Err(ServeError::Rejected(RejectReason::QueueFull));
        }
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        obs::counter_add(obs::Metric::ServeRequests, 1);
        let enqueued_at = shard.clock.tick();
        let ticket = Arc::new(TicketState { slot: Mutex::new(None), cv: Condvar::new() });
        q.items.push_back(Pending { payload, ticket: Arc::clone(&ticket), enqueued_at });
        drop(q);
        shard.cv.notify_one();
        Ok(Ticket(ticket))
    }

    /// Convenience: submit and block for the response.
    pub fn encode_blocking(&self, sql: &str) -> ServeResult {
        self.submit(sql)?.wait()
    }

    /// Total queue depth across shards (in-flight requests not yet
    /// drained).
    pub fn queue_depth(&self) -> usize {
        self.shard_queue_depths().iter().sum()
    }

    /// Per-shard queue depths, indexed by shard.
    pub fn shard_queue_depths(&self) -> Vec<usize> {
        self.shared.shards.iter().map(|s| s.lock().items.len()).collect()
    }

    /// Stops admission on every shard without blocking: subsequent
    /// submissions fail with [`ServeError::ShuttingDown`] while already
    /// accepted work keeps draining. The flags are flipped while holding
    /// every shard lock, so the transition is atomic across shards — no
    /// submission can observe one shard draining and another still
    /// accepting. Idempotent; [`Service::shutdown`] still joins the
    /// workers.
    pub fn begin_drain(&self) {
        {
            let mut guards: Vec<_> = self.shared.shards.iter().map(|s| s.lock()).collect();
            for g in &mut guards {
                g.draining = true;
            }
        }
        for s in &self.shared.shards {
            s.cv.notify_all();
        }
    }

    /// Stops admission on every shard, drains every accepted request,
    /// joins the workers, and returns aggregate statistics. Accepted
    /// work is never dropped: each queued ticket resolves before its
    /// shard exits.
    pub fn shutdown(self) -> ServeStats {
        self.shutdown_detailed().0
    }

    /// Like [`Service::shutdown`], also returning one [`ShardStats`]
    /// per shard (indexed by shard).
    pub fn shutdown_detailed(mut self) -> (ServeStats, Vec<ShardStats>) {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> (ServeStats, Vec<ShardStats>) {
        self.begin_drain();
        let mut stats = ServeStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            ..ServeStats::default()
        };
        let mut per_shard = Vec::with_capacity(self.shared.shards.len());
        for (i, worker) in std::mem::take(&mut self.workers).into_iter().enumerate() {
            match worker.join() {
                Ok(s) => {
                    stats.processed += s.processed;
                    stats.parse_errors += s.parse_errors;
                    stats.batches += s.batches;
                    stats.encoded += s.encoded;
                    stats.cache_hits += s.cache_hits;
                    stats.cache_misses += s.cache_misses;
                    stats.cache_evictions += s.cache_evictions;
                    per_shard.push(s);
                }
                Err(_) => {
                    stats.failed_shards += 1;
                    per_shard.push(ShardStats {
                        shard: i,
                        panicked: true,
                        ..ShardStats::default()
                    });
                }
            }
        }
        stats.worker_panicked = stats.failed_shards > 0;
        (stats, per_shard)
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            let _ = self.shutdown_inner();
        }
    }
}
