//! Table 6 — distribution of joins in the Synthetic / Scale / JOB-light
//! workloads.
//!
//! Paper reference:
//! ```text
//! Number of Joins   0     1     2     3    4   overall
//! Synthetic      1636  1407  1957    0    0      5000
//! Scale           100   100   100  100  100       500
//! JOB-light         0     3    32   23   12        70
//! ```

use preqr_bench::Ctx;
use preqr_data::workloads::{self, join_distribution};

fn main() {
    let ctx = Ctx::build();
    println!("=== Table 6: distribution of joins ===");
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9}",
        "workload", "0", "1", "2", "3", "4", "overall"
    );
    let rows: Vec<(&str, Vec<preqr_sql::ast::Query>)> = vec![
        ("Synthetic", workloads::synthetic(&ctx.db, 5000, 42)),
        ("Scale", workloads::scale(&ctx.db, 43)),
        ("JOB-light", workloads::job_light(&ctx.db, 41)),
    ];
    for (name, qs) in rows {
        let mut hist = join_distribution(&qs);
        hist.resize(5, 0);
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9}",
            name,
            hist[0],
            hist[1],
            hist[2],
            hist[3],
            hist[4],
            qs.len()
        );
    }
    println!("\npaper:    Synthetic 1636/1407/1957/0/0 (5000), Scale 100x5 (500), JOB-light 0/3/32/23/12 (70)");
}
