//! Token embedding table.

use rand::Rng;

use crate::init;
use crate::layers::{join, Module};
use crate::ops;
use crate::tensor::Tensor;

/// A lookup table mapping integer ids to learned `dim`-dimensional rows.
pub struct Embedding {
    table: Tensor,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates a `vocab × dim` embedding table initialized N(0, 0.02) as in
    /// BERT.
    pub fn new(vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        Self { table: Tensor::param(init::normal(vocab, dim, 0.02, rng)), vocab, dim }
    }

    /// Looks up a sequence of ids, producing an `ids.len() × dim` tensor.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn forward(&self, ids: &[usize]) -> Tensor {
        for &id in ids {
            assert!(id < self.vocab, "embedding id {id} out of range ({})", self.vocab);
        }
        ops::gather_rows(&self.table, ids)
    }

    /// The raw table tensor (used for weight tying with output projections).
    pub fn table(&self) -> &Tensor {
        &self.table
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Module for Embedding {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        out.push((join(prefix, "table"), self.table.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_shape_and_repeat() {
        let mut rng = StdRng::seed_from_u64(5);
        let e = Embedding::new(10, 4, &mut rng);
        let out = e.forward(&[3, 3, 7]);
        assert_eq!(out.shape(), (3, 4));
        let v = out.value_clone();
        assert_eq!(v.row(0), v.row(1));
        assert_ne!(v.row(0), v.row(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lookup_rejects_out_of_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let e = Embedding::new(4, 2, &mut rng);
        let _ = e.forward(&[4]);
    }

    #[test]
    fn gradient_flows_only_to_looked_up_rows() {
        let mut rng = StdRng::seed_from_u64(5);
        let e = Embedding::new(5, 2, &mut rng);
        let out = e.forward(&[1, 3]);
        ops::sum_all(&out).backward();
        let g = e.table().grad().unwrap();
        assert_eq!(g.row(0), &[0.0, 0.0]);
        assert_eq!(g.row(1), &[1.0, 1.0]);
        assert_eq!(g.row(2), &[0.0, 0.0]);
        assert_eq!(g.row(3), &[1.0, 1.0]);
    }
}
