//! Failure-injection integration tests: every layer must fail loudly and
//! recoverably on malformed or overload inputs, not corrupt state.

use preqr::{PreqrConfig, SqlBert, ValueBuckets};
use preqr_engine::{execute, Database, Datum, ExecError};
use preqr_schema::{Column, ColumnType, Schema, Table};
use preqr_sql::parser::parse;

#[test]
fn executor_refuses_oversized_cross_products() {
    let mut s = Schema::new();
    s.add_table(Table::new("a", vec![Column::primary("id", ColumnType::Int)]));
    s.add_table(Table::new("b", vec![Column::primary("id", ColumnType::Int)]));
    let mut db = Database::new(s);
    for i in 0..9_000i64 {
        db.insert("a", &[Datum::Int(i)]);
        db.insert("b", &[Datum::Int(i)]);
    }
    // 9k × 9k = 81M rows > the 50M safety cap.
    let q = parse("SELECT COUNT(*) FROM a, b").unwrap();
    assert!(matches!(execute(&db, &q), Err(ExecError::TooLarge(_))));
    // The database is still usable afterwards.
    let ok = parse("SELECT COUNT(*) FROM a WHERE a.id < 5").unwrap();
    assert_eq!(execute(&db, &ok).unwrap().join_cardinality, 5);
}

#[test]
fn parser_rejects_malformed_inputs_without_panicking() {
    for bad in [
        "",
        "SELECT",
        "SELECT FROM t",
        "SELECT * FROM",
        "SELECT * FROM t WHERE",
        "SELECT * FROM t WHERE x >",
        "SELECT * FROM t WHERE x IN ()",
        "SELECT * FROM t LIMIT -1",
        "SELECT * FROM t GROUP ORDER",
        "SELECT * FROM t; SELECT * FROM u",
        "SELEC * FROM t",
        "SELECT * FROM t JOIN",
        "SELECT * FROM t JOIN u ON",
        "SELECT * FROM t JOIN u ON x",
        "SELECT * FROM t WHERE x BETWEEN 1",
        "SELECT * FROM t WHERE x IN (1,",
        "SELECT * FROM t WHERE (x = 1",
        "SELECT COUNT( FROM t",
        "SELECT * FROM t ORDER BY",
        "SELECT * FROM t GROUP BY",
        "SELECT * FROM t LIMIT abc",
        "SELECT * FROM t UNION",
        "SELECT * FROM 42",
        "SELECT * FROM t WHERE x = 'unterminated",
        "INSERT INTO t VALUES (1)",
        "SELECT * FROM t WHERE x LIKE",
        "SELECT * FROM t AS",
        "SELECT * FROM t WHERE x = ()",
    ] {
        assert!(parse(bad).is_err(), "should reject: {bad}");
    }
}

#[test]
fn model_handles_out_of_schema_queries_gracefully() {
    // Queries over tables the schema never mentioned still encode (they
    // just see unknown automaton states and fallback value buckets).
    let mut s = Schema::new();
    s.add_table(Table::new("title", vec![Column::primary("id", ColumnType::Int)]));
    let corpus = vec![parse("SELECT COUNT(*) FROM title t WHERE t.id > 5").unwrap()];
    let model = SqlBert::new(&corpus, &s, ValueBuckets::new(4), PreqrConfig::test());
    let alien = parse("SELECT weird FROM elsewhere WHERE thing LIKE '%x%'").unwrap();
    let pq = model.prepare(&alien);
    assert!(pq.structure_coverage < 1.0, "unknown structure must be visible");
    let e = model.encode(&alien);
    assert!(e.data().iter().all(|v| v.is_finite()));
}

#[test]
fn empty_pretraining_corpus_still_builds_a_usable_model() {
    let mut s = Schema::new();
    s.add_table(Table::new("t", vec![Column::primary("id", ColumnType::Int)]));
    let model = SqlBert::new(&[], &s, ValueBuckets::new(4), PreqrConfig::test());
    let stats = {
        let mut m = model;
        m.pretrain(&[], 2, 1e-3)
    };
    assert_eq!(stats.len(), 2, "epochs over an empty corpus are no-ops, not panics");
}

/// Trace writer that models a full disk: fails after a byte budget.
struct FailingWriter {
    budget: usize,
}

impl std::io::Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.len() > self.budget {
            return Err(std::io::Error::other("disk full"));
        }
        self.budget -= buf.len();
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn failing_trace_sink_degrades_to_noop_without_changing_training() {
    use preqr_obs as obs;
    use std::sync::Arc;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "title",
            vec![Column::primary("id", ColumnType::Int), Column::new("year", ColumnType::Int)],
        ));
        s
    }
    fn corpus() -> Vec<preqr_sql::Query> {
        (0..8)
            .map(|i| {
                parse(&format!("SELECT COUNT(*) FROM title t WHERE t.year > {}", 1960 + i)).unwrap()
            })
            .collect()
    }
    fn losses() -> Vec<f64> {
        let mut m = SqlBert::new(&corpus(), &schema(), ValueBuckets::new(4), PreqrConfig::test());
        m.pretrain(&corpus(), 2, 1e-3).into_iter().map(|s| s.loss).collect()
    }

    obs::clear_sink();
    obs::set_metrics_enabled(false);
    let plain = losses();

    obs::reset_metrics();
    obs::take_warnings();
    obs::install_sink(Arc::new(obs::JsonlSink::new(FailingWriter { budget: 60 })));
    let traced = losses();

    assert!(!obs::tracing_active(), "a failing sink must uninstall itself");
    let warnings = obs::take_warnings();
    assert_eq!(warnings.len(), 1, "exactly one degradation warning, not one per event");
    assert_eq!(warnings[0].kind, obs::EventKind::Warn);
    assert_eq!(obs::counter_get(obs::Metric::ObsSinkDegraded), 1);
    assert_eq!(plain, traced, "sink failure must never perturb training results");

    obs::set_metrics_enabled(false);
    obs::reset_metrics();
}

mod serve_failures {
    //! Serving-layer failure injection: malformed input, overload, drain,
    //! rejection precedence under a shutdown race, a dying worker, and
    //! shard isolation. The service must resolve every accepted ticket —
    //! with a value or a structured error — and never hang a client.

    use super::*;
    use preqr_serve::{route, RejectReason, ServeConfig, ServeError, Service};
    use preqr_sql::normalize::template_text;
    use std::sync::{Arc, Condvar, Mutex};

    fn serve_model() -> SqlBert {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "title",
            vec![Column::primary("id", ColumnType::Int), Column::new("year", ColumnType::Int)],
        ));
        let corpus: Vec<_> = (0..4)
            .map(|i| {
                parse(&format!("SELECT COUNT(*) FROM title t WHERE t.year > {}", 1960 + i)).unwrap()
            })
            .collect();
        SqlBert::new(&corpus, &s, ValueBuckets::new(4), PreqrConfig::test())
    }

    /// A start gate the test opens to release parked shard workers. A
    /// `Mutex`+`Condvar` pair rather than an mpsc channel: the factory is
    /// shared across shard threads (`Fn + Sync`), and `mpsc::Receiver`
    /// is `!Sync`.
    struct Gate {
        open: Mutex<bool>,
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Gate {
            Gate { open: Mutex::new(false), cv: Condvar::new() }
        }

        fn release(&self) {
            *self.open.lock().unwrap() = true;
            self.cv.notify_all();
        }

        fn wait(&self) {
            let mut open = self.open.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
        }
    }

    /// Spawns a service whose workers stay parked until the gate opens —
    /// queues fill deterministically with no drain racing the test.
    fn gated_service(config: ServeConfig) -> (Service, Arc<Gate>) {
        let gate = Arc::new(Gate::new());
        let g = Arc::clone(&gate);
        let svc = Service::spawn(config, move |_| {
            g.wait();
            serve_model()
        });
        (svc, gate)
    }

    #[test]
    fn malformed_sql_yields_structured_error_and_worker_keeps_serving() {
        let svc = Service::spawn(ServeConfig::default(), |_| serve_model());
        match svc.encode_blocking("SELECT FROM WHERE") {
            Err(ServeError::Malformed { message, .. }) => {
                assert!(!message.is_empty(), "diagnostic must carry the parser message");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // The worker is not poisoned: the next request serves normally.
        let ok = svc.encode_blocking("SELECT COUNT(*) FROM title t WHERE t.year > 1961");
        assert!(ok.is_ok(), "worker must survive malformed input: {ok:?}");
        let stats = svc.shutdown();
        assert_eq!(stats.parse_errors, 1);
        assert_eq!(stats.processed, 2);
        assert!(!stats.worker_panicked);
    }

    #[test]
    fn overload_is_rejected_with_queue_full_backpressure() {
        let config = ServeConfig { queue_capacity: 2, ..ServeConfig::default() };
        let (svc, gate) = gated_service(config);
        let t1 = svc.submit("SELECT COUNT(*) FROM title t WHERE t.year > 1960").unwrap();
        let t2 = svc.submit("SELECT COUNT(*) FROM title t WHERE t.year > 1961").unwrap();
        // Queue at capacity: admission control pushes back instead of queueing.
        match svc.submit("SELECT COUNT(*) FROM title t WHERE t.year > 1962") {
            Err(ServeError::Rejected(RejectReason::QueueFull)) => {}
            other => panic!("expected QueueFull rejection, got {other:?}"),
        }
        gate.release();
        let stats = svc.shutdown();
        assert!(t1.wait().is_ok() && t2.wait().is_ok(), "accepted work must still be served");
        assert_eq!((stats.accepted, stats.rejected, stats.processed), (2, 1, 2));
    }

    #[test]
    fn shutdown_racing_a_full_queue_always_wins_over_queue_full() {
        // The precedence contract: once any caller has observed
        // `ShuttingDown`, no caller may observe `QueueFull` — even while
        // the drain flag flips concurrently with a full queue and a
        // worker actively draining it. Hammer submissions from a second
        // thread across that exact window and check every interleaving
        // the scheduler produces.
        for _ in 0..3 {
            let config = ServeConfig { queue_capacity: 2, ..ServeConfig::default() };
            let (svc, gate) = gated_service(config);
            let sql =
                |i: usize| format!("SELECT COUNT(*) FROM title t WHERE t.year > {}", 1960 + i);
            let t1 = svc.submit(&sql(0)).unwrap();
            let t2 = svc.submit(&sql(1)).unwrap();
            assert!(
                matches!(svc.submit(&sql(2)), Err(ServeError::Rejected(RejectReason::QueueFull))),
                "queue must start full"
            );
            std::thread::scope(|scope| {
                let svc = &svc;
                let hammer = scope.spawn(move || {
                    let mut outcomes = Vec::new();
                    let mut tickets = Vec::new();
                    let mut probes_after_down = 0;
                    while probes_after_down < 50 {
                        if matches!(outcomes.last(), Some(&"down")) {
                            probes_after_down += 1;
                        }
                        match svc.submit(&sql(3)) {
                            Ok(t) => {
                                outcomes.push("accepted");
                                tickets.push(t);
                            }
                            Err(ServeError::Rejected(RejectReason::QueueFull)) => {
                                outcomes.push("full")
                            }
                            Err(ServeError::ShuttingDown) => outcomes.push("down"),
                            Err(e) => panic!("unexpected submit error: {e:?}"),
                        }
                    }
                    (outcomes, tickets)
                });
                // Release the parked worker and stop admission while the
                // hammer runs: the drain flag races the full-queue check.
                gate.release();
                svc.begin_drain();
                let (outcomes, tickets) = hammer.join().unwrap();
                let first_down =
                    outcomes.iter().position(|o| *o == "down").expect("drain must be observed");
                assert!(
                    outcomes[first_down..].iter().all(|o| *o == "down"),
                    "QueueFull (or acceptance) observed after ShuttingDown: {outcomes:?}"
                );
                for (i, t) in tickets.into_iter().enumerate() {
                    assert!(t.wait().is_ok(), "accepted ticket {i} must resolve during drain");
                }
            });
            let stats = svc.shutdown();
            assert!(t1.wait().is_ok() && t2.wait().is_ok());
            assert_eq!(stats.accepted, stats.processed, "every accepted ticket must be processed");
            assert!(!stats.worker_panicked);
        }
    }

    #[test]
    fn shutdown_under_load_drains_every_accepted_ticket() {
        let config = ServeConfig { queue_capacity: 32, max_batch: 4, ..ServeConfig::default() };
        let (svc, gate) = gated_service(config);
        let tickets: Vec<_> = (0..10)
            .map(|i| {
                svc.submit(&format!("SELECT COUNT(*) FROM title t WHERE t.year > {}", 1950 + i))
                    .unwrap()
            })
            .collect();
        gate.release();
        let stats = svc.shutdown();
        for (i, t) in tickets.into_iter().enumerate() {
            assert!(t.wait().is_ok(), "ticket {i} dropped during drain");
        }
        assert_eq!(stats.accepted, 10);
        assert_eq!(stats.processed, 10, "drain must process everything accepted");
        assert!(!stats.worker_panicked);
    }

    #[test]
    fn dying_worker_fails_tickets_instead_of_hanging_clients() {
        let gate = Arc::new(Gate::new());
        let g = Arc::clone(&gate);
        let svc = Service::spawn(ServeConfig::default(), move |_| {
            g.wait();
            panic!("model factory blew up");
        });
        let t1 = svc.submit("SELECT COUNT(*) FROM title t WHERE t.year > 1960").unwrap();
        let t2 = svc.submit("SELECT COUNT(*) FROM title t WHERE t.year > 1961").unwrap();
        gate.release();
        // Queued tickets resolve with WorkerFailed — they never hang.
        assert_eq!(t1.wait(), Err(ServeError::WorkerFailed));
        assert_eq!(t2.wait(), Err(ServeError::WorkerFailed));
        // The poison is visible to later submissions.
        match svc.submit("SELECT COUNT(*) FROM title t WHERE t.year > 1962") {
            Err(ServeError::WorkerFailed) => {}
            other => panic!("poisoned service must refuse work, got {other:?}"),
        }
        let stats = svc.shutdown();
        assert!(stats.worker_panicked);
        assert_eq!(stats.failed_shards, 1);
        assert_eq!(stats.processed, 0);
    }

    #[test]
    fn dying_shard_fails_its_tickets_and_leaves_siblings_serving() {
        let shards = 4;
        // Distinct IN-list arities give distinct templates; find two that
        // route to different shards so the failure boundary is visible.
        let sql = |arity: usize| {
            let vals: Vec<String> = (1961..1961 + arity as i64).map(|v| v.to_string()).collect();
            format!("SELECT COUNT(*) FROM title t WHERE t.year IN ({})", vals.join(", "))
        };
        let shard_of = |q: &str| route(&template_text(&parse(q).unwrap()), shards);
        let dead_sql = sql(1);
        let dead = shard_of(&dead_sql);
        let live_sql =
            (2..32).map(sql).find(|q| shard_of(q) != dead).expect("some arity routes elsewhere");
        let live = shard_of(&live_sql);

        let gate = Arc::new(Gate::new());
        let g = Arc::clone(&gate);
        let config = ServeConfig { shards, ..ServeConfig::default() };
        let svc = Service::spawn(config, move |i| {
            g.wait();
            if i == dead {
                panic!("shard {i} blew up");
            }
            serve_model()
        });
        let t_dead = svc.submit(&dead_sql).unwrap();
        let t_live = svc.submit(&live_sql).unwrap();
        gate.release();
        assert_eq!(t_dead.wait(), Err(ServeError::WorkerFailed));
        assert!(t_live.wait().is_ok(), "sibling shard must keep serving");
        // Poison is per-shard: the dead shard refuses, siblings accept.
        match svc.submit(&dead_sql) {
            Err(ServeError::WorkerFailed) => {}
            other => panic!("dead shard must refuse work, got {other:?}"),
        }
        assert!(svc.encode_blocking(&live_sql).is_ok());
        let (stats, per_shard) = svc.shutdown_detailed();
        assert!(stats.worker_panicked);
        assert_eq!(stats.failed_shards, 1);
        assert_eq!(per_shard.len(), shards);
        assert!(
            per_shard.iter().enumerate().all(|(i, s)| s.panicked == (i == dead)),
            "exactly the killed shard must report a panic: {per_shard:?}"
        );
        assert_eq!(per_shard[live].processed, 2);
        assert_eq!(stats.processed, 2, "only the live shard's work is counted");
    }
}

#[test]
fn engine_rejects_ambiguity_instead_of_guessing() {
    let mut s = Schema::new();
    s.add_table(Table::new("a", vec![Column::primary("id", ColumnType::Int)]));
    s.add_table(Table::new("b", vec![Column::primary("id", ColumnType::Int)]));
    let db = Database::new(s);
    let q = parse("SELECT id FROM a, b").unwrap();
    assert!(matches!(execute(&db, &q), Err(ExecError::AmbiguousColumn(_))));
}
