//! Query-aware schema linking: inspect which schema-graph vertices each
//! query token attends to (the soft sub-graph pruning of §3.4.3 and
//! Figure 5).
//!
//! ```sh
//! cargo run --release --example schema_linking
//! ```

use preqr::{PreqrConfig, SqlBert};
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads;
use preqr_sql::parser::parse;
use preqr_tasks::setup::value_buckets_from_db;

fn main() {
    let db = generate(ImdbConfig { movies: 800, ..ImdbConfig::default() });
    let corpus = workloads::pretrain_corpus(&db, 300, 7);
    let buckets = value_buckets_from_db(&db, 10);
    let mut model = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::small());
    println!("pre-training…");
    model.pretrain(&corpus, 3, 1e-3);

    // The query of Figure 5.
    let q = parse(
        "SELECT COUNT(*) FROM title t, movie_companies mc \
         WHERE t.id = mc.movie_id AND t.production_year > 2010 AND mc.company_id = 5",
    )
    .unwrap();
    let (names, attn) = model.schema_attention(&q).expect("schema module enabled");
    let pq = model.prepare(&q);

    println!("\nquery: {q}\n");
    println!("per-token top-3 schema vertices (first-layer attention):");
    for (i, tok) in pq.tokens.iter().enumerate().take(attn.rows()) {
        let mut scored: Vec<(usize, f32)> = attn.row(i).iter().copied().enumerate().collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
        let top: Vec<String> =
            scored.iter().take(3).map(|(j, w)| format!("{} ({:.2})", names[*j], w)).collect();
        println!("  {:<28} → {}", tok.text, top.join(", "));
    }

    // Aggregate: the query-aware sub-graph = vertices with the highest
    // total attention mass (compare Figure 5's bold sub-graph).
    let mut mass = vec![0.0f32; names.len()];
    for i in 0..attn.rows() {
        for (j, &w) in attn.row(i).iter().enumerate() {
            mass[j] += w;
        }
    }
    let mut ranked: Vec<(usize, f32)> = mass.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite mass"));
    println!("\nquery-aware sub-graph (top vertices by attention mass):");
    for (j, w) in ranked.iter().take(8) {
        println!("  {:<30} {:.2}", names[*j], w);
    }
}
