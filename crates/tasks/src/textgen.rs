//! The SQL-to-Text generation task (§4.6, Table 7 bottom): trains each
//! encoder variant with the shared RNN decoder and scores BLEU.

use rand::rngs::StdRng;
use rand::SeedableRng;

use preqr::SqlBert;
use preqr_baselines::seq2seq::{
    DecoderOptions, EncodedSource, GraphTextEncoder, LstmTextEncoder, RnnDecoder, TextEncoder,
    TextVocab, TreeTextEncoder, UNK,
};
use preqr_data::text::TextPair;
use preqr_nn::layers::{Linear, Module};
use preqr_nn::{ops, Tensor};
use preqr_sql::ast::Query;
use preqr_sql::normalize::linearize;
use preqr_train::{FnTask, Plan, StepOutput, Trainer, TrainerConfig};

use crate::metrics::bleu;

/// The encoder variants of Table 7's generation block.
pub enum GenEncoder<'a> {
    /// Basic attentional Seq2Seq.
    Seq2Seq,
    /// Seq2Seq with copy mechanism.
    Seq2SeqCp,
    /// Seq2Seq with copy + latent variable.
    Seq2SeqCpLv,
    /// Tree-structured encoder.
    Tree2Seq,
    /// Graph-structured encoder.
    Graph2Seq,
    /// PreQR encoder (pre-trained; only the decoder + a projection train).
    Preqr2Seq(&'a SqlBert),
}

impl GenEncoder<'_> {
    /// Row label.
    pub fn name(&self) -> &'static str {
        match self {
            GenEncoder::Seq2Seq => "Seq2Seq",
            GenEncoder::Seq2SeqCp => "Seq2Seq+cp",
            GenEncoder::Seq2SeqCpLv => "Seq2Seq+cp+lv",
            GenEncoder::Tree2Seq => "Tree2Seq",
            GenEncoder::Graph2Seq => "Graph2Seq",
            GenEncoder::Preqr2Seq(_) => "PreQR2Seq",
        }
    }
}

/// PreQR as a text encoder: the (frozen) final representation projected
/// to the decoder width.
struct PreqrTextEncoder<'a> {
    model: &'a SqlBert,
    nodes: Option<Tensor>,
    proj: Linear,
    tv: TextVocab,
}

impl TextEncoder for PreqrTextEncoder<'_> {
    fn encode(&self, q: &Query) -> EncodedSource {
        let m = self.model.encode_with_nodes(q, self.nodes.as_ref());
        let reps = Tensor::constant(m);
        let memory = self.proj.forward(&reps);
        let init = ops::mean_rows(&memory);
        let copy_ids = linearize(q)
            .iter()
            .map(|t| {
                let text = t.text.trim_matches('\'');
                let id = self.tv.id(text);
                if id <= UNK {
                    UNK
                } else {
                    id
                }
            })
            .collect();
        EncodedSource { memory, init, copy_ids }
    }

    fn encoder_params(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.proj.collect_params("proj", &mut out);
        out.into_iter().map(|(_, t)| t).collect()
    }
}

/// A trained generation model.
pub struct GenModel<'a> {
    encoder: Box<dyn TextEncoder + 'a>,
    decoder: RnnDecoder,
    vocab: TextVocab,
    /// Row label.
    pub name: &'static str,
}

impl GenModel<'_> {
    /// Generates a tokenized description for a query.
    pub fn generate(&self, q: &Query, max_len: usize) -> Vec<String> {
        let src = self.encoder.encode(q);
        let ids = self.decoder.generate(&src, max_len);
        self.vocab.decode(&ids)
    }

    /// Corpus BLEU on a test set.
    pub fn evaluate(&self, test: &[TextPair]) -> f64 {
        let candidates: Vec<Vec<String>> =
            test.iter().map(|p| self.generate(&p.query, 24)).collect();
        let references: Vec<Vec<Vec<String>>> = test.iter().map(|p| p.references.clone()).collect();
        bleu(&candidates, &references)
    }
}

/// Trains one encoder variant on a (SQL, text) corpus.
pub fn train_generator<'a>(
    kind: GenEncoder<'a>,
    train: &[TextPair],
    d: usize,
    epochs: usize,
    seed: u64,
) -> GenModel<'a> {
    let mut rng = StdRng::seed_from_u64(seed);
    let name = kind.name();
    let vocab = TextVocab::build(
        train.iter().flat_map(|p| p.references.iter().flatten()).map(String::as_str),
    );
    let corpus: Vec<Query> = train.iter().map(|p| p.query.clone()).collect();
    let (encoder, options): (Box<dyn TextEncoder + 'a>, DecoderOptions) = match kind {
        GenEncoder::Seq2Seq => (
            Box::new(LstmTextEncoder::new(&corpus, &vocab, d, &mut rng)),
            DecoderOptions::default(),
        ),
        GenEncoder::Seq2SeqCp => (
            Box::new(LstmTextEncoder::new(&corpus, &vocab, d, &mut rng)),
            DecoderOptions { copy: true, latent: false },
        ),
        GenEncoder::Seq2SeqCpLv => (
            Box::new(LstmTextEncoder::new(&corpus, &vocab, d, &mut rng)),
            DecoderOptions { copy: true, latent: true },
        ),
        GenEncoder::Tree2Seq => (
            Box::new(TreeTextEncoder::new(&corpus, &vocab, d, &mut rng)),
            DecoderOptions::default(),
        ),
        GenEncoder::Graph2Seq => (
            Box::new(GraphTextEncoder::new(&corpus, &vocab, d, &mut rng)),
            DecoderOptions::default(),
        ),
        GenEncoder::Preqr2Seq(model) => {
            // Per §4.6: "we just replace the query encoding part in the
            // first Seq2Seq by PreQR encoding" — plain decoder, frozen
            // PreQR, trainable projection.
            let proj = Linear::new(model.config.output_dim(), d, &mut rng);
            let nodes = model.cached_nodes();
            (
                Box::new(PreqrTextEncoder { model, nodes, proj, tv: vocab.clone() }),
                DecoderOptions::default(),
            )
        }
    };
    let decoder = RnnDecoder::new(&vocab, d, options, &mut rng);
    let mut params = encoder.encoder_params();
    params.extend(decoder.params());
    // Scoped so the task's borrows end before encoder/decoder/vocab move
    // into the model.
    {
        let mut task = FnTask::new("textgen", train.len(), params, |idx, rng| {
            let src = encoder.encode(&train[idx].query);
            let target = vocab.encode(&train[idx].references[0]);
            let loss = decoder.loss(&src, &target, true, rng);
            let scalar = f64::from(loss.value_clone().get(0, 0));
            loss.backward();
            StepOutput { loss: scalar, ..StepOutput::default() }
        });
        let config = TrainerConfig::new(Plan::Epochs { epochs, chunk: 2, shuffle: false }, 5e-3);
        Trainer::new(config).fit(&mut task, &mut rng);
    }
    GenModel { encoder, decoder, vocab, name }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_data::text::{corpus, TextStyle};

    #[test]
    fn all_variants_train_and_score() {
        let pairs = corpus(TextStyle::WikiSql, 24, 1);
        let (train, test) = pairs.split_at(20);
        for kind in [GenEncoder::Seq2Seq, GenEncoder::Tree2Seq, GenEncoder::Graph2Seq] {
            let m = train_generator(kind, train, 16, 2, 3);
            let b = m.evaluate(test);
            assert!((0.0..=1.0).contains(&b), "{} bleu {b}", m.name);
        }
    }

    #[test]
    fn training_longer_improves_bleu_on_train_set() {
        let pairs = corpus(TextStyle::StackOverflow, 16, 2);
        let short = train_generator(GenEncoder::Seq2Seq, &pairs, 16, 2, 4);
        let long = train_generator(GenEncoder::Seq2Seq, &pairs, 16, 30, 4);
        let b_short = short.evaluate(&pairs);
        let b_long = long.evaluate(&pairs);
        assert!(
            b_long > b_short,
            "more training should fit the corpus better: {b_short} → {b_long}"
        );
    }

    #[test]
    fn generation_produces_target_side_words() {
        let pairs = corpus(TextStyle::WikiSql, 20, 3);
        let m = train_generator(GenEncoder::Seq2Seq, &pairs, 16, 20, 5);
        let out = m.generate(&pairs[0].query, 16);
        assert!(!out.is_empty(), "generation must produce words");
        let vocab_words: std::collections::HashSet<String> =
            pairs.iter().flat_map(|p| p.references.iter().flatten().cloned()).collect();
        assert!(out.iter().all(|w| vocab_words.contains(w)));
    }
}
