//! Bitmap sampling (the MSCN/LSTM optimization trick of §4.3.2, also
//! ablated in Figure 8 as the "NS" variants).
//!
//! For each table a fixed random sample of rows is materialized. A query's
//! bitmap feature for a table marks which sample rows satisfy the query's
//! single-table predicates on that table — a cheap, learned-model-friendly
//! signal of per-table selectivity that also carries correlation
//! information.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use preqr_sql::ast::{Expr, Query};

use crate::bind::{Bindings, ExecError};
use crate::filter::compile;
use crate::storage::Database;

/// Per-table materialized sample row ids.
#[derive(Clone, Debug)]
pub struct BitmapSampler {
    sample_size: usize,
    samples: Vec<(String, Vec<u32>)>,
}

impl BitmapSampler {
    /// Draws a sample of up to `sample_size` rows per table (seeded, so
    /// features are reproducible).
    pub fn new(db: &Database, sample_size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = db
            .schema()
            .tables()
            .iter()
            .map(|t| {
                let n = db.row_count(&t.name);
                let mut ids: Vec<u32> = (0..n as u32).collect();
                ids.shuffle(&mut rng);
                ids.truncate(sample_size);
                ids.sort_unstable();
                (t.name.clone(), ids)
            })
            .collect();
        Self { sample_size, samples }
    }

    /// The per-table sample width.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Sample row ids of a table.
    pub fn sample(&self, table: &str) -> Option<&[u32]> {
        self.samples.iter().find(|(t, _)| t == table).map(|(_, s)| s.as_slice())
    }

    /// Bitmap of one table under a query's single-table predicates:
    /// `sample_size` floats in {0, 1} (short samples zero-padded).
    ///
    /// # Errors
    /// Name-resolution failures.
    pub fn bitmap_for(
        &self,
        db: &Database,
        q: &Query,
        binding_idx: usize,
    ) -> Result<Vec<f32>, ExecError> {
        let stmt = &q.body;
        let bindings = Bindings::of(stmt, db.schema())?;
        let table_name = bindings.table_name(binding_idx).to_string();
        let table =
            db.table(&table_name).ok_or_else(|| ExecError::UnknownTable(table_name.clone()))?;
        // Collect this table's single-table conjuncts.
        let mut preds: Vec<Expr> = Vec::new();
        if let Some(w) = &stmt.where_clause {
            for c in w.conjuncts() {
                if matches!(c, Expr::InSubquery { .. }) {
                    continue;
                }
                let cols = c.columns();
                if cols.is_empty() {
                    continue;
                }
                let all_here = cols.iter().try_fold(true, |acc, col| {
                    bindings.resolve(col, db.schema()).map(|bc| acc && bc.table == binding_idx)
                })?;
                // Skip join predicates (column-to-column across tables are
                // filtered out by all_here; same-table col-col remain).
                if all_here && !is_join_shape(c) {
                    preds.push(c.clone());
                }
            }
        }
        let sample = self.sample(&table_name).unwrap_or(&[]);
        let mut bits = vec![0.0f32; self.sample_size];
        if preds.is_empty() {
            for (i, _) in sample.iter().enumerate() {
                bits[i] = 1.0;
            }
            return Ok(bits);
        }
        let compiled = compile(&Expr::and_all(preds), binding_idx, &bindings, db)?;
        for (i, &rid) in sample.iter().enumerate() {
            if compiled.eval(table, rid as usize) {
                bits[i] = 1.0;
            }
        }
        Ok(bits)
    }

    /// Fraction of sample rows surviving (a cheap selectivity estimate).
    ///
    /// # Errors
    /// Name-resolution failures.
    pub fn selectivity(
        &self,
        db: &Database,
        q: &Query,
        binding_idx: usize,
    ) -> Result<f64, ExecError> {
        let bits = self.bitmap_for(db, q, binding_idx)?;
        let table = {
            let bindings = Bindings::of(&q.body, db.schema())?;
            bindings.table_name(binding_idx).to_string()
        };
        let n = self.sample(&table).map_or(0, <[u32]>::len);
        if n == 0 {
            return Ok(0.0);
        }
        Ok(bits.iter().filter(|&&b| b > 0.0).count() as f64 / n as f64)
    }
}

fn is_join_shape(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Cmp {
            left: preqr_sql::ast::Scalar::Column(_),
            right: preqr_sql::ast::Scalar::Column(_),
            ..
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Datum;
    use preqr_schema::{Column, ColumnType, Schema, Table};
    use preqr_sql::parser::parse;

    fn db() -> Database {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "t",
            vec![Column::primary("id", ColumnType::Int), Column::new("year", ColumnType::Int)],
        ));
        let mut db = Database::new(s);
        for i in 0..1000i64 {
            db.insert("t", &[Datum::Int(i), Datum::Int(1900 + (i % 100))]);
        }
        db
    }

    #[test]
    fn sample_is_deterministic_and_bounded() {
        let db = db();
        let a = BitmapSampler::new(&db, 64, 7);
        let b = BitmapSampler::new(&db, 64, 7);
        assert_eq!(a.sample("t"), b.sample("t"));
        assert_eq!(a.sample("t").unwrap().len(), 64);
        let c = BitmapSampler::new(&db, 64, 8);
        assert_ne!(a.sample("t"), c.sample("t"));
    }

    #[test]
    fn bitmap_tracks_predicate_selectivity() {
        let db = db();
        let s = BitmapSampler::new(&db, 200, 7);
        // year > 1949 selects half the rows.
        let q = parse("SELECT COUNT(*) FROM t WHERE t.year > 1949").unwrap();
        let sel = s.selectivity(&db, &q, 0).unwrap();
        assert!((sel - 0.5).abs() < 0.12, "sample selectivity {sel}");
    }

    #[test]
    fn no_predicates_gives_all_ones() {
        let db = db();
        let s = BitmapSampler::new(&db, 32, 7);
        let q = parse("SELECT COUNT(*) FROM t").unwrap();
        let bits = s.bitmap_for(&db, &q, 0).unwrap();
        assert!(bits.iter().all(|&b| b == 1.0));
    }

    #[test]
    fn small_table_pads_with_zeros() {
        let mut schema = Schema::new();
        schema.add_table(Table::new("small", vec![Column::primary("id", ColumnType::Int)]));
        let mut db2 = Database::new(schema);
        for i in 0..5 {
            db2.insert("small", &[Datum::Int(i)]);
        }
        let s = BitmapSampler::new(&db2, 16, 1);
        let q = parse("SELECT COUNT(*) FROM small").unwrap();
        let bits = s.bitmap_for(&db2, &q, 0).unwrap();
        assert_eq!(bits.len(), 16);
        assert_eq!(bits.iter().filter(|&&b| b == 1.0).count(), 5);
    }
}
