//! parking_lot stub over std primitives: non-poisoning Mutex with a
//! guard-returning `lock()`, and a Condvar whose `wait` takes `&mut guard`.

use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(ManuallyDrop<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(ManuallyDrop::new(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: the inner guard is only taken here or in `Condvar::wait`,
        // which always writes a fresh guard back before returning.
        unsafe { ManuallyDrop::drop(&mut self.0) }
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: take the std guard out, block on it, and put the returned
        // guard straight back; `guard` is never observable empty.
        unsafe {
            let inner = ManuallyDrop::take(&mut guard.0);
            let reacquired = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
            guard.0 = ManuallyDrop::new(reacquired);
        }
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
