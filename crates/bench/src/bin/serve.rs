//! `serve` — serving-layer probe feeding `results/BENCH_serve.json`.
//!
//! Replays a repeated-template workload (a handful of query templates,
//! each requested many times with fresh literals) through `preqr-serve`
//! under cache-on and cache-off configurations, and appends best-of-N
//! wall-clock timings plus the serving counters to the trajectory file.
//! The `cache_on` vs `cache_off` rows are the headline: on a
//! template-heavy workload the normalized-query cache should replace
//! almost every forward pass with an LRU lookup.

use std::path::Path;
use std::time::Instant;

use preqr::{PreqrConfig, SqlBert, ValueBuckets};
use preqr_bench::trajectory::{append, PipelineEntry};
use preqr_nn::parallel;
use preqr_schema::{Column, ColumnType, ForeignKey, Schema, Table};
use preqr_serve::{ServeConfig, ServeStats, Service};
use preqr_sql::parser::parse;

const REPS: usize = 3;
/// Requests per replay: `TEMPLATES` templates cycled with fresh literals.
const REQUESTS: usize = 240;
const TEMPLATES: usize = 8;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(Table::new(
        "title",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("production_year", ColumnType::Int),
            Column::new("kind_id", ColumnType::Int),
        ],
    ));
    s.add_table(Table::new(
        "movie_companies",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("movie_id", ColumnType::Int),
            Column::new("company_id", ColumnType::Int),
        ],
    ));
    s.add_foreign_key(ForeignKey {
        from_table: "movie_companies".into(),
        from_column: "movie_id".into(),
        to_table: "title".into(),
        to_column: "id".into(),
    });
    s
}

/// `i`-th request: template `i % TEMPLATES`, literals varied per round so
/// only normalization can make requests collide.
fn request(i: usize) -> String {
    let year = 1930 + (i / TEMPLATES) % 80;
    let kind = 1 + (i / TEMPLATES) % 7;
    match i % TEMPLATES {
        0 => format!("SELECT COUNT(*) FROM title t WHERE t.production_year > {year}"),
        1 => format!("SELECT * FROM title t WHERE t.kind_id IN ({kind}, {})", kind + 1),
        2 => format!(
            "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND t.production_year > {year}"
        ),
        3 => format!(
            "SELECT MIN(t.id) FROM title t WHERE t.production_year BETWEEN {year} AND {}",
            year + 10
        ),
        4 => format!("SELECT COUNT(*) FROM title t WHERE t.kind_id = {kind}"),
        5 => format!("SELECT * FROM title t WHERE t.production_year < {year}"),
        6 => format!("SELECT COUNT(*) FROM movie_companies mc WHERE mc.company_id > {}", i % 90),
        _ => format!(
            "SELECT MAX(t.production_year) FROM title t WHERE t.kind_id IN ({kind}, {}, {})",
            kind + 2,
            kind + 4
        ),
    }
}

fn model() -> SqlBert {
    let corpus: Vec<_> = (0..TEMPLATES).map(|i| parse(&request(i)).unwrap()).collect();
    let mut buckets = ValueBuckets::new(4);
    buckets.insert("title", "production_year", (1930..2020).map(f64::from).collect());
    buckets.insert("title", "kind_id", (1..12).map(f64::from).collect());
    buckets.insert("movie_companies", "company_id", (0..100).map(f64::from).collect());
    SqlBert::new(&corpus, &schema(), buckets, PreqrConfig::test())
}

/// Replays the workload once; returns (serving seconds, final stats).
/// Model construction happens before the clock starts (a warmup request
/// blocks until the worker's replica is ready).
fn replay(config: ServeConfig) -> (f64, ServeStats) {
    let svc = Service::spawn(config, |_| model());
    svc.encode_blocking(&request(0)).expect("warmup");
    let t0 = Instant::now();
    let tickets: Vec<_> =
        (0..REQUESTS).map(|i| svc.submit(&request(i)).expect("queue sized for script")).collect();
    for t in tickets {
        t.wait().expect("workload is all parseable");
    }
    let secs = t0.elapsed().as_secs_f64();
    (secs, svc.shutdown())
}

fn bench(label: &str, config: ServeConfig) -> (f64, ServeStats) {
    let mut best = f64::INFINITY;
    let mut stats = ServeStats::default();
    for _ in 0..REPS {
        let (secs, s) = replay(config);
        if secs < best {
            best = secs;
            stats = s;
        }
    }
    println!(
        "{label:>10}: {best:.4}s  ({:.0} req/s)  encoded={} hits={} misses={} evictions={}",
        REQUESTS as f64 / best,
        stats.encoded,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions
    );
    (best, stats)
}

fn entry(phase: &str, secs: f64, stats: &ServeStats) -> PipelineEntry {
    PipelineEntry {
        label: "serve".into(),
        phase: phase.into(),
        threads: parallel::effective_threads(),
        trace: false,
        seconds: secs,
        counters: vec![
            ("serve.requests".into(), stats.accepted),
            ("serve.encoded".into(), stats.encoded),
            ("serve.batches".into(), stats.batches),
            ("serve.cache.hits".into(), stats.cache_hits),
            ("serve.cache.misses".into(), stats.cache_misses),
            ("serve.cache.evictions".into(), stats.cache_evictions),
        ],
    }
}

fn main() {
    let base = ServeConfig { queue_capacity: REQUESTS + 1, ..ServeConfig::default() };
    println!(
        "serve bench: {REQUESTS} requests over {TEMPLATES} templates, \
         threads={}, max_batch={}",
        parallel::effective_threads(),
        base.max_batch
    );
    let (on_secs, on_stats) = bench("cache_on", base);
    let (off_secs, off_stats) = bench("cache_off", ServeConfig { cache_capacity: 0, ..base });
    let (unbatched_secs, unbatched_stats) =
        bench("unbatched", ServeConfig { max_batch: 1, ..base });
    println!("cache speedup on repeated templates: {:.2}x", off_secs / on_secs);

    let path = Path::new("results/BENCH_serve.json");
    append(
        path,
        &[
            entry("cache_on", on_secs, &on_stats),
            entry("cache_off", off_secs, &off_stats),
            entry("unbatched", unbatched_secs, &unbatched_stats),
        ],
    )
    .expect("write trajectory");
    println!("appended 3 entries -> {}", path.display());
}
