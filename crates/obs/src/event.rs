//! Trace events and their JSONL encoding.
//!
//! An event's *identity* is its `(kind, name)` pair plus the field keys —
//! never a timestamp. Wall-clock durations and metric values live in the
//! payload only, so two runs of the same deterministic program produce
//! event streams that are identical up to payload values, and tests can
//! assert exact event counts.

use std::fmt::Write as _;

/// What an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `value` is the elapsed wall-clock microseconds.
    Span,
    /// A monotonic counter's current total: `value` is the total.
    Counter,
    /// A histogram summary: `value` is the observation count; the
    /// `p50`/`p95`/`max`/`sum` summary statistics ride in `fields`.
    Hist,
    /// An out-of-band warning (e.g. a sink degrading to no-op).
    Warn,
}

impl EventKind {
    /// Wire name used in the JSONL `"ev"` key.
    pub fn wire_name(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Counter => "counter",
            EventKind::Hist => "hist",
            EventKind::Warn => "warn",
        }
    }
}

/// A typed field value attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer payload.
    U64(u64),
    /// Signed integer payload.
    I64(i64),
    /// Floating-point payload (non-finite values encode as `null`).
    F64(f64),
    /// String payload.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(f64::from(v))
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One trace event. See the module docs for the identity/payload split.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Event class.
    pub kind: EventKind,
    /// Stable dotted name (`pretrain.epoch`, `nn.dispatch.pool`, …).
    pub name: &'static str,
    /// Primary payload value; meaning depends on `kind`.
    pub value: f64,
    /// Additional payload fields in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Convenience constructor without fields.
    pub fn new(kind: EventKind, name: &'static str, value: f64) -> Self {
        Event { kind, name, value, fields: Vec::new() }
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Encodes the event as one JSONL line (schema v1, no trailing
    /// newline). The key for `value` depends on the kind: `us` for spans,
    /// `value` for counters/warns, `count` for histogram summaries.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"v\":1,\"ev\":\"");
        s.push_str(self.kind.wire_name());
        s.push_str("\",\"name\":");
        write_json_str(&mut s, self.name);
        let value_key = match self.kind {
            EventKind::Span => "us",
            EventKind::Hist => "count",
            EventKind::Counter | EventKind::Warn => "value",
        };
        s.push_str(",\"");
        s.push_str(value_key);
        s.push_str("\":");
        write_json_num(&mut s, self.value);
        if !self.fields.is_empty() {
            s.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                write_json_str(&mut s, k);
                s.push(':');
                match v {
                    FieldValue::U64(x) => {
                        let _ = write!(s, "{x}");
                    }
                    FieldValue::I64(x) => {
                        let _ = write!(s, "{x}");
                    }
                    FieldValue::F64(x) => write_json_num(&mut s, *x),
                    FieldValue::Str(x) => write_json_str(&mut s, x),
                }
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

/// Writes a JSON string literal (quotes + escapes) into `out`.
fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a JSON number; non-finite floats become `null` (JSON has no
/// NaN/Inf) so a bad value can never corrupt the stream.
fn write_json_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_event_encodes_with_us_key() {
        let mut e = Event::new(EventKind::Span, "pretrain.epoch", 1234.5);
        e.fields.push(("epoch", FieldValue::U64(0)));
        e.fields.push(("loss", FieldValue::F64(5.25)));
        assert_eq!(
            e.to_jsonl(),
            r#"{"v":1,"ev":"span","name":"pretrain.epoch","us":1234.5,"fields":{"epoch":0,"loss":5.25}}"#
        );
    }

    #[test]
    fn counter_event_encodes_with_value_key() {
        let e = Event::new(EventKind::Counter, "engine.queries", 42.0);
        assert_eq!(e.to_jsonl(), r#"{"v":1,"ev":"counter","name":"engine.queries","value":42}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let mut e = Event::new(EventKind::Warn, "obs.sink.degraded", 1.0);
        e.fields.push(("error", FieldValue::Str("broken \"pipe\"\n".into())));
        assert!(e.to_jsonl().contains(r#""error":"broken \"pipe\"\n""#));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let e = Event::new(EventKind::Counter, "x", f64::NAN);
        assert_eq!(e.to_jsonl(), r#"{"v":1,"ev":"counter","name":"x","value":null}"#);
    }
}
