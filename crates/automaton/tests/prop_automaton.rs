//! Property-based tests over SQL2Automaton.

use proptest::prelude::*;

use preqr_automaton::Automaton;
use preqr_sql::normalize::state_keys;
use preqr_sql::parser::parse;
use preqr_sql::template::TemplateSet;
use preqr_sql::Query;

fn query_strings() -> impl Strategy<Value = String> {
    let table = prop_oneof![Just("title"), Just("movie_companies"), Just("cast_info")];
    let col = prop_oneof![Just("id"), Just("year"), Just("kind")];
    (table, col, -100i64..100, any::<bool>()).prop_map(|(t, c, v, agg)| {
        if agg {
            format!("SELECT COUNT(*) FROM {t} WHERE {t}.{c} > {v}")
        } else {
            format!("SELECT {c} FROM {t} WHERE {t}.{c} = {v}")
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every query used to build the automaton is accepted by it.
    #[test]
    fn training_queries_are_accepted(sqls in proptest::collection::vec(query_strings(), 1..10)) {
        let queries: Vec<Query> = sqls.iter().map(|s| parse(s).unwrap()).collect();
        let templates = TemplateSet::extract(&queries, 0.0);
        let fa = Automaton::from_templates(&templates);
        for q in &queries {
            let m = fa.match_keys(&state_keys(q));
            prop_assert!(m.accepted, "training query rejected: {q}");
            prop_assert_eq!(m.unknown_tokens, 0);
        }
    }

    /// Matching is deterministic and state ids are stable across repeated
    /// matches.
    #[test]
    fn matching_is_deterministic(sql in query_strings()) {
        let q = parse(&sql).unwrap();
        let fa = Automaton::from_templates(&TemplateSet::extract(&[q.clone()], 0.0));
        let a = fa.match_keys(&state_keys(&q));
        let b = fa.match_keys(&state_keys(&q));
        prop_assert_eq!(a, b);
    }

    /// Adding templates never invalidates previously accepted queries
    /// (monotonicity of the merge).
    #[test]
    fn template_addition_is_monotone(
        base in query_strings(),
        extra in proptest::collection::vec(query_strings(), 1..6),
    ) {
        let q = parse(&base).unwrap();
        let mut fa = Automaton::from_templates(&TemplateSet::extract(&[q.clone()], 0.0));
        prop_assert!(fa.match_keys(&state_keys(&q)).accepted);
        for e in &extra {
            fa.add_template(&state_keys(&parse(e).unwrap()));
            prop_assert!(
                fa.match_keys(&state_keys(&q)).accepted,
                "adding template {e} broke acceptance of {base}"
            );
        }
    }

    /// One-hot encodings are valid unit vectors for known states.
    #[test]
    fn one_hot_is_unit(sql in query_strings()) {
        let q = parse(&sql).unwrap();
        let fa = Automaton::from_templates(&TemplateSet::extract(&[q.clone()], 0.0));
        for &s in &fa.match_keys(&state_keys(&q)).states {
            let v = fa.one_hot(s);
            prop_assert_eq!(v.iter().filter(|&&x| x == 1.0).count(), 1);
            prop_assert_eq!(v.iter().filter(|&&x| x != 0.0).count(), 1);
        }
    }
}
