//! Shared training/evaluation pipeline for the cardinality- and
//! cost-estimation tasks (§4.5, Tables 7–11).
//!
//! The paper's setup: learned models are trained on a large generated
//! workload (90 % train / 10 % validation, "trained until the validation
//! q-error will not decrease anymore"), then evaluated on the benchmark
//! workloads. The PreQR variants fine-tune the last SQLBERT layer
//! together with a simple 3-layer FC head (§4.3.2).

use rand::rngs::StdRng;
use rand::SeedableRng;

use preqr::SqlBert;
use preqr_baselines::lstm_est::{LstmEstimator, LstmVocab};
use preqr_baselines::mscn::{MscnFeaturizer, MscnModel};
use preqr_baselines::neurocard::SamplingEstimator;
use preqr_data::workloads::LabeledQuery;
use preqr_engine::{BitmapSampler, CostModel, Database, PgEstimator, TableStats};
use preqr_nn::layers::{Mlp, Module};
use preqr_nn::{ops, Matrix, Tensor};
use preqr_obs as obs;
use preqr_sql::ast::Query;
use preqr_train::{FnTask, Plan, Schedule, StepOutput, Trainer, TrainerConfig};

use crate::metrics::{qerror, QErrorStats};

/// Which quantity is being estimated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// Join cardinality.
    Cardinality,
    /// Plan cost.
    Cost,
}

impl Target {
    /// Ground-truth value of a labelled query.
    pub fn truth(&self, lq: &LabeledQuery) -> f64 {
        match self {
            Target::Cardinality => lq.card as f64,
            Target::Cost => lq.cost,
        }
    }

    /// Log-space regression target.
    pub fn log_truth(&self, lq: &LabeledQuery) -> f64 {
        self.truth(lq).max(1.0).log2()
    }
}

/// Log-target standardization fitted on the training set, with the
/// standard decode-side clamp to the observed target range (MSCN's
/// original implementation normalizes targets into a bounded interval,
/// which caps extrapolation blow-ups for every learned model equally).
#[derive(Clone, Copy, Debug)]
pub struct Normalizer {
    mean: f64,
    std: f64,
    lo: f64,
    hi: f64,
}

impl Normalizer {
    /// Fits on log targets.
    pub fn fit(values: &[f64]) -> Self {
        let n = values.len().max(1) as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            mean,
            std: var.sqrt().max(1e-6),
            lo: if lo.is_finite() { lo - 1.0 } else { 0.0 },
            hi: if hi.is_finite() { hi + 3.0 } else { 64.0 },
        }
    }

    /// Log target → normalized.
    pub fn encode(&self, log_v: f64) -> f32 {
        ((log_v - self.mean) / self.std) as f32
    }

    /// Normalized prediction → raw estimate, clamped to the training
    /// target range (±margin in log space). Deliberately *not* clamped to
    /// ≥ 1 so the same normalizer can decode sub-unit residual ratios —
    /// q-error clamps at evaluation time instead.
    pub fn decode(&self, norm: f32) -> f64 {
        let log_v = (f64::from(norm) * self.std + self.mean).clamp(self.lo, self.hi);
        log_v.exp2()
    }
}

/// Anything that can produce a raw estimate for a query.
pub trait Estimator {
    /// Display name (row label in the tables).
    fn name(&self) -> String;
    /// Raw estimate (cardinality or cost, matching the trained target).
    fn predict(&self, q: &Query) -> f64;
}

/// Evaluates an estimator on a labelled workload.
pub fn evaluate(est: &dyn Estimator, target: Target, workload: &[LabeledQuery]) -> QErrorStats {
    let preds: Vec<f64> = workload.iter().map(|lq| est.predict(&lq.query)).collect();
    let truths: Vec<f64> = workload.iter().map(|lq| target.truth(lq)).collect();
    QErrorStats::compute(&preds, &truths)
}

/// Mean validation q-error (early-stopping criterion).
fn validation_qerror(
    predict: impl Fn(&LabeledQuery) -> f64,
    target: Target,
    valid: &[LabeledQuery],
) -> f64 {
    obs::counter_add(obs::Metric::EstEpochs, 1);
    if valid.is_empty() {
        return f64::INFINITY;
    }
    let val = valid.iter().map(|lq| qerror(predict(lq), target.truth(lq))).sum::<f64>()
        / valid.len() as f64;
    if val.is_finite() {
        obs::record_hist(obs::HistMetric::EstValQerror, val);
    }
    val
}

/// Options shared by the estimation fine-tuners — the legacy
/// epochs/seed pair plus a pluggable learning-rate schedule (the default
/// constant schedule reproduces the legacy trainers bit-for-bit).
#[derive(Clone, Copy, Debug)]
pub struct FineTuneOptions {
    /// Maximum number of epochs (validation early stopping may end the
    /// run sooner).
    pub epochs: usize,
    /// Model-initialization seed.
    pub seed: u64,
    /// Learning-rate schedule applied over the run's optimizer steps.
    pub schedule: Schedule,
}

impl FineTuneOptions {
    /// The legacy setup: constant learning rate.
    pub fn new(epochs: usize, seed: u64) -> Self {
        Self { epochs, seed, schedule: Schedule::Constant }
    }

    /// Sets the learning-rate schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }
}

/// Builds the Trainer configuration every estimation fine-tuner shares:
/// insertion-order visits (no shuffling), one optimizer step per
/// `chunk`, patience-3 early stopping on the validation q-error (skipped
/// when there is no validation split, matching the legacy trainers).
fn estimator_config(
    opts: FineTuneOptions,
    chunk: usize,
    lr: f32,
    has_valid: bool,
) -> TrainerConfig {
    let mut config =
        TrainerConfig::new(Plan::Epochs { epochs: opts.epochs, chunk, shuffle: false }, lr)
            .with_schedule(opts.schedule);
    if has_valid {
        config.patience = Some(3);
    }
    config
}

fn snapshot(params: &[Tensor]) -> Vec<Matrix> {
    params.iter().map(Tensor::value_clone).collect()
}

fn restore(params: &[Tensor], snap: &[Matrix]) {
    for (p, m) in params.iter().zip(snap) {
        p.set_value(m.clone());
    }
}

/// The PostgreSQL baseline (`PGCard` / `PGCost`).
pub struct PgBaseline<'a> {
    db: &'a Database,
    stats: &'a TableStats,
    cost_model: CostModel,
    target: Target,
}

impl<'a> PgBaseline<'a> {
    /// Creates the baseline.
    pub fn new(db: &'a Database, stats: &'a TableStats, target: Target) -> Self {
        Self { db, stats, cost_model: CostModel::default(), target }
    }
}

impl Estimator for PgBaseline<'_> {
    fn name(&self) -> String {
        match self.target {
            Target::Cardinality => "PGCard".into(),
            Target::Cost => "PGCost".into(),
        }
    }

    fn predict(&self, q: &Query) -> f64 {
        let est = PgEstimator::new(self.db, self.stats);
        match self.target {
            Target::Cardinality => est.estimate(q).unwrap_or(1.0),
            Target::Cost => {
                let mut total = 0.0;
                for s in q.selects() {
                    let Ok(plan) = est.estimate_plan(s) else { continue };
                    let base: Vec<f64> =
                        s.tables().iter().map(|t| self.stats.row_count(&t.table) as f64).collect();
                    total += self.cost_model.plan_cost(&base, &plan.filtered, &plan.joins);
                }
                total.max(1.0)
            }
        }
    }
}

/// Trained MSCN estimator.
pub struct MscnPredictor<'a> {
    db: &'a Database,
    featurizer: MscnFeaturizer,
    model: MscnModel,
    sampler: Option<&'a BitmapSampler>,
    norm: Normalizer,
    target: Target,
    /// Mean validation q-error after each epoch (Figure 8).
    pub history: Vec<f64>,
}

impl Estimator for MscnPredictor<'_> {
    fn name(&self) -> String {
        match self.target {
            Target::Cardinality => "MSCNCard".into(),
            Target::Cost => "MSCNCost".into(),
        }
    }

    fn predict(&self, q: &Query) -> f64 {
        let feats = self.featurizer.featurize(self.db, q, self.sampler);
        let out = self.model.forward(&feats, &self.featurizer).value_clone().get(0, 0);
        self.norm.decode(out)
    }
}

/// Trains the MSCN baseline with validation early stopping.
pub fn train_mscn<'a>(
    db: &'a Database,
    sampler: Option<&'a BitmapSampler>,
    train: &[LabeledQuery],
    valid: &[LabeledQuery],
    target: Target,
    epochs: usize,
    seed: u64,
) -> MscnPredictor<'a> {
    train_mscn_with(db, sampler, train, valid, target, FineTuneOptions::new(epochs, seed))
}

/// [`train_mscn`] with the full fine-tune option surface (LR schedule).
pub fn train_mscn_with<'a>(
    db: &'a Database,
    sampler: Option<&'a BitmapSampler>,
    train: &[LabeledQuery],
    valid: &[LabeledQuery],
    target: Target,
    opts: FineTuneOptions,
) -> MscnPredictor<'a> {
    obs::counter_add(obs::Metric::EstTrainRuns, 1);
    let _span = obs::span("est.train").field("method", "mscn").field("epochs", opts.epochs);
    let bits = sampler.map_or(0, BitmapSampler::sample_size);
    let featurizer = MscnFeaturizer::new(db, bits);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let model = MscnModel::new(&featurizer, 32, &mut rng);
    let norm = Normalizer::fit(&train.iter().map(|l| target.log_truth(l)).collect::<Vec<_>>());
    let feats: Vec<_> = train.iter().map(|l| featurizer.featurize(db, &l.query, sampler)).collect();
    let targets: Vec<f32> = train.iter().map(|l| norm.encode(target.log_truth(l))).collect();
    let config = estimator_config(opts, 16, 1e-3, !valid.is_empty());
    // Scoped so the task's borrows of the model end before it is moved
    // into the predictor.
    let report = {
        let mut task = FnTask::new("est.mscn", train.len(), model.params(), |idx, _rng| {
            let pred = model.forward(&feats[idx], &featurizer);
            let loss = ops::huber_loss(&pred, &Matrix::full(1, 1, targets[idx]), 1.0);
            let scalar = f64::from(loss.value_clone().get(0, 0));
            loss.backward();
            StepOutput { loss: scalar, ..StepOutput::default() }
        })
        .with_eval(|| {
            validation_qerror(
                |lq| {
                    let f = featurizer.featurize(db, &lq.query, sampler);
                    norm.decode(model.forward(&f, &featurizer).value_clone().get(0, 0))
                },
                target,
                valid,
            )
        })
        .with_on_early_stop(|| obs::counter_add(obs::Metric::EstEarlyStops, 1));
        Trainer::new(config).fit(&mut task, &mut rng)
    };
    let history = report.val_history();
    MscnPredictor { db, featurizer, model, sampler, norm, target, history }
}

/// Trained LSTM estimator.
pub struct LstmPredictor<'a> {
    db: &'a Database,
    vocab: LstmVocab,
    model: LstmEstimator,
    sampler: Option<&'a BitmapSampler>,
    bitmap_dim: usize,
    norm: Normalizer,
    target: Target,
    stats: TableStats,
    cost_model: CostModel,
    /// Mean validation q-error after each epoch (Figure 8).
    pub history: Vec<f64>,
}

impl Estimator for LstmPredictor<'_> {
    fn name(&self) -> String {
        match self.target {
            Target::Cardinality => "LSTMCard".into(),
            Target::Cost => "LSTMCost".into(),
        }
    }

    fn predict(&self, q: &Query) -> f64 {
        let (ids, nums) = self.vocab.encode(q);
        let channel = self
            .sampler
            .map(|s| preqr_baselines::lstm_est::table_channel(self.db, s, q))
            .unwrap_or_else(|| vec![0.0; ids.len()]);
        let plan_dim = if self.target == Target::Cost { PLAN_FEATURES } else { 0 };
        let mut bitmap = self
            .sampler
            .map(|s| LstmEstimator::pooled_bitmap(self.db, s, q, self.bitmap_dim))
            .unwrap_or_default();
        bitmap.truncate(self.bitmap_dim - plan_dim);
        if plan_dim > 0 {
            bitmap.extend(plan_features(self.db, &self.stats, &self.cost_model, q));
        }
        let out = self.model.forward(&ids, &nums, &channel, Some(&bitmap)).value_clone().get(0, 0);
        self.norm.decode(out)
    }
}

/// Trains the LSTM baseline.
pub fn train_lstm<'a>(
    db: &'a Database,
    sampler: Option<&'a BitmapSampler>,
    train: &[LabeledQuery],
    valid: &[LabeledQuery],
    target: Target,
    epochs: usize,
    seed: u64,
) -> LstmPredictor<'a> {
    train_lstm_with(db, sampler, train, valid, target, FineTuneOptions::new(epochs, seed))
}

/// [`train_lstm`] with the full fine-tune option surface (LR schedule).
pub fn train_lstm_with<'a>(
    db: &'a Database,
    sampler: Option<&'a BitmapSampler>,
    train: &[LabeledQuery],
    valid: &[LabeledQuery],
    target: Target,
    opts: FineTuneOptions,
) -> LstmPredictor<'a> {
    obs::counter_add(obs::Metric::EstTrainRuns, 1);
    let _span = obs::span("est.train").field("method", "lstm").field("epochs", opts.epochs);
    let corpus: Vec<Query> = train.iter().map(|l| l.query.clone()).collect();
    let vocab = LstmVocab::build(&corpus);
    // The LSTM baseline's form of the bitmap trick (§4.3.2): the raw
    // pooled sample bits appended to the encoder state, plus — for the
    // cost task, whose original (plan-level) formulation consumes the
    // optimizer's per-node estimates — the plan statistics.
    let use_plan = target == Target::Cost;
    let plan_dim = if use_plan { PLAN_FEATURES } else { 0 };
    let bitmap_dim = sampler.map_or(0, BitmapSampler::sample_size) + plan_dim;
    let table_stats = TableStats::analyze(db);
    let cost_model = CostModel::default();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let model = LstmEstimator::new(&vocab, 24, 32, bitmap_dim, &mut rng);
    let norm = Normalizer::fit(&train.iter().map(|l| target.log_truth(l)).collect::<Vec<_>>());
    let encoded: Vec<(Vec<usize>, Vec<f32>, Vec<f32>, Option<Vec<f32>>, f32)> = train
        .iter()
        .map(|l| {
            let (ids, nums) = vocab.encode(&l.query);
            let channel = sampler
                .map(|s| preqr_baselines::lstm_est::table_channel(db, s, &l.query))
                .unwrap_or_else(|| vec![0.0; ids.len()]);
            let mut bitmap = sampler
                .map(|s| LstmEstimator::pooled_bitmap(db, s, &l.query, bitmap_dim))
                .unwrap_or_default();
            bitmap.truncate(bitmap_dim - plan_dim);
            if use_plan {
                bitmap.extend(plan_features(db, &table_stats, &cost_model, &l.query));
            }
            (ids, nums, channel, Some(bitmap), norm.encode(target.log_truth(l)))
        })
        .collect();
    let config = estimator_config(opts, 8, 1e-3, !valid.is_empty());
    // Scoped so the task's borrows of the model end before it is moved
    // into the predictor.
    let report = {
        let mut task = FnTask::new("est.lstm", train.len(), model.params(), |idx, _rng| {
            let (ids, nums, channel, bitmap, t) = &encoded[idx];
            let pred = model.forward(ids, nums, channel, bitmap.as_deref());
            let loss = ops::huber_loss(&pred, &Matrix::full(1, 1, *t), 1.0);
            let scalar = f64::from(loss.value_clone().get(0, 0));
            loss.backward();
            StepOutput { loss: scalar, ..StepOutput::default() }
        })
        .with_eval(|| {
            validation_qerror(
                |lq| {
                    let (ids, nums) = vocab.encode(&lq.query);
                    let channel = sampler
                        .map(|s| preqr_baselines::lstm_est::table_channel(db, s, &lq.query))
                        .unwrap_or_else(|| vec![0.0; ids.len()]);
                    let mut bitmap = sampler
                        .map(|s| LstmEstimator::pooled_bitmap(db, s, &lq.query, bitmap_dim))
                        .unwrap_or_default();
                    bitmap.truncate(bitmap_dim - plan_dim);
                    if use_plan {
                        bitmap.extend(plan_features(db, &table_stats, &cost_model, &lq.query));
                    }
                    norm.decode(
                        model.forward(&ids, &nums, &channel, Some(&bitmap)).value_clone().get(0, 0),
                    )
                },
                target,
                valid,
            )
        })
        .with_on_early_stop(|| obs::counter_add(obs::Metric::EstEarlyStops, 1));
        Trainer::new(config).fit(&mut task, &mut rng)
    };
    let history = report.val_history();
    LstmPredictor {
        db,
        vocab,
        model,
        sampler,
        bitmap_dim,
        norm,
        target,
        stats: table_stats,
        cost_model,
        history,
    }
}

/// Trained PreQR estimator: frozen lower layers + fine-tuned last
/// `Trm_g` layer + a 3-layer FC head on the `[CLS]` representation
/// (⧺ pooled bitmap when sampling is enabled).
pub struct PreqrPredictor<'a> {
    db: &'a Database,
    model: &'a SqlBert,
    head: Mlp,
    nodes: Option<Tensor>,
    sampler: Option<&'a BitmapSampler>,
    bitmap_dim: usize,
    norm: Normalizer,
    /// The trained target (kept for introspection by harness code).
    pub target: Target,
    /// This predictor's own fine-tuned last-layer weights. The model is
    /// shared between predictors (e.g. the cardinality head and the
    /// NeuroCard-correction head), so each predictor swaps its weights in
    /// around every forward pass.
    layer_weights: Vec<Matrix>,
    stats: TableStats,
    cost_model: CostModel,
    /// Row label (PreQRCard / BERTCard / PreQRNT… set by the caller).
    pub label: String,
    /// Mean validation q-error after each epoch (Figure 8).
    pub history: Vec<f64>,
}

/// Width of the aggregated bitmap-sampling feature block.
pub const SAMPLE_FEATURES: usize = 8;

/// The bitmap-sampling optimization of §4.3.2 applied to PreQR:
/// slot-free aggregates over the per-binding sample bitmaps, so they
/// extrapolate to join counts beyond the fine-tuning workload —
/// `Σ log2 |T|`, `Σ log2(|T|·sel)`, `Σ sel`, `min sel`, `#tables`,
/// `#joins`. (MSCN receives the same information as per-table raw
/// bitmaps attached to its table one-hot sets.)
pub fn sample_features(db: &Database, sampler: &BitmapSampler, q: &Query) -> Vec<f32> {
    let tables = q.body.tables();
    let mut sum_log_rows = 0.0f64;
    let mut sum_log_sel_rows = 0.0f64;
    let mut sum_frac = 0.0f64;
    let mut min_frac = 1.0f64;
    for (bi, t) in tables.iter().enumerate() {
        let rows = db.row_count(&t.table) as f64;
        let frac = sampler.selectivity(db, q, bi).unwrap_or(0.0);
        sum_log_rows += rows.max(1.0).log2();
        sum_log_sel_rows += (rows * frac).max(1.0).log2();
        sum_frac += frac;
        min_frac = min_frac.min(frac);
    }
    let njoins = preqr_data::workloads::num_joins(q) as f64;
    // Cost-relevant aggregates: total and largest per-table filtered
    // sizes (intermediate result sizes scale with these).
    let mut sum_sel_rows = 0.0f64;
    let mut max_log_sel_rows = 0.0f64;
    for (bi, t) in tables.iter().enumerate() {
        let rows = db.row_count(&t.table) as f64;
        let frac = sampler.selectivity(db, q, bi).unwrap_or(0.0);
        sum_sel_rows += rows * frac;
        max_log_sel_rows = max_log_sel_rows.max((rows * frac).max(1.0).log2());
    }
    vec![
        sum_log_rows as f32,
        sum_log_sel_rows as f32,
        sum_frac as f32,
        min_frac as f32,
        tables.len() as f32,
        njoins as f32,
        sum_sel_rows.max(1.0).log2() as f32,
        max_log_sel_rows as f32,
    ]
}

/// Width of the optimizer-plan feature block.
pub const PLAN_FEATURES: usize = 4;

/// Optimizer plan statistics (log₂ scale): estimated total cardinality,
/// summed filtered sizes, summed join-step sizes, and modelled cost.
/// Faithful to the LSTM cost baseline, which consumes the optimizer's
/// per-node estimates (Sun & Li); PreQR replaces only the *query
/// encoding* of that model, inheriting these auxiliary inputs.
pub fn plan_features(
    db: &Database,
    stats: &TableStats,
    cost_model: &CostModel,
    q: &Query,
) -> Vec<f32> {
    let est = PgEstimator::new(db, stats);
    let mut total = 0.0f64;
    let mut filtered = 0.0f64;
    let mut joins = 0.0f64;
    let mut cost = 0.0f64;
    for sel in q.selects() {
        let Ok(plan) = est.estimate_plan(sel) else { continue };
        total += plan.total;
        filtered += plan.filtered.iter().sum::<f64>();
        joins += plan.joins.iter().sum::<f64>();
        let base: Vec<f64> =
            sel.tables().iter().map(|t| stats.row_count(&t.table) as f64).collect();
        cost += cost_model.plan_cost(&base, &plan.filtered, &plan.joins);
    }
    vec![
        total.max(1.0).log2() as f32,
        filtered.max(1.0).log2() as f32,
        joins.max(1.0).log2() as f32,
        cost.max(1.0).log2() as f32,
    ]
}

/// The head input: `[CLS]` row ⧺ *sum*-pooled token rows ⧺ the sample
/// features when sampling is enabled. Sum pooling (not mean) keeps the
/// representation additive in the query's tokens, so log-cardinality —
/// which grows roughly additively with each join — extrapolates to join
/// counts beyond the fine-tuning workload (the Scale/JOB-light
/// generalization the paper tests).
fn preqr_features(reps: &Tensor, bits: &[f32], bitmap_dim: usize) -> Tensor {
    let cls = ops::gather_rows(reps, &[0]);
    let n = reps.shape().0 as f32;
    let pooled = ops::scale(&ops::mean_rows(reps), n / 8.0);
    let x = ops::concat_cols(&cls, &pooled);
    if bitmap_dim > 0 {
        let mut padded = vec![0.0f32; bitmap_dim];
        padded[..bits.len().min(bitmap_dim)].copy_from_slice(&bits[..bits.len().min(bitmap_dim)]);
        ops::concat_cols(&x, &Tensor::constant(Matrix::from_vec(1, bitmap_dim, padded)))
    } else {
        x
    }
}

impl PreqrPredictor<'_> {
    fn features(&self, q: &Query) -> Tensor {
        let live = self.model.last_layer_params();
        let current = snapshot(&live);
        restore(&live, &self.layer_weights);
        let pq = self.model.prepare(q);
        let lower = self.model.lower_states(&pq, self.nodes.as_ref());
        let reps = self.model.last_layer_encode(&lower, self.nodes.as_ref());
        restore(&live, &current);
        let mut bits = self.sampler.map(|s| sample_features(self.db, s, q)).unwrap_or_default();
        bits.extend(plan_features(self.db, &self.stats, &self.cost_model, q));
        preqr_features(&reps, &bits, self.bitmap_dim)
    }
}

impl Estimator for PreqrPredictor<'_> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn predict(&self, q: &Query) -> f64 {
        let out = self.head.forward(&self.features(q)).value_clone().get(0, 0);
        self.norm.decode(out)
    }
}

/// Fine-tunes PreQR for an estimation target: trains the last SQLBERT
/// layer together with the FC head (§4.3.2).
#[allow(clippy::too_many_arguments)]
pub fn train_preqr<'a>(
    db: &'a Database,
    model: &'a SqlBert,
    sampler: Option<&'a BitmapSampler>,
    train: &[LabeledQuery],
    valid: &[LabeledQuery],
    target: Target,
    epochs: usize,
    seed: u64,
    label: &str,
) -> PreqrPredictor<'a> {
    train_preqr_with(
        db,
        model,
        sampler,
        train,
        valid,
        target,
        FineTuneOptions::new(epochs, seed),
        label,
    )
}

/// [`train_preqr`] with the full fine-tune option surface (LR schedule).
#[allow(clippy::too_many_arguments)]
pub fn train_preqr_with<'a>(
    db: &'a Database,
    model: &'a SqlBert,
    sampler: Option<&'a BitmapSampler>,
    train: &[LabeledQuery],
    valid: &[LabeledQuery],
    target: Target,
    opts: FineTuneOptions,
    label: &str,
) -> PreqrPredictor<'a> {
    obs::counter_add(obs::Metric::EstTrainRuns, 1);
    let _span = obs::span("est.train").field("method", label).field("epochs", opts.epochs);
    let nodes = model.cached_nodes();
    // The shared model's last layer is trained here but restored before
    // returning, so successive fine-tunings all start from the same
    // pre-trained state.
    let pretrained_layer = snapshot(&model.last_layer_params());
    let bitmap_dim =
        if sampler.is_some() { SAMPLE_FEATURES + PLAN_FEATURES } else { PLAN_FEATURES };
    let in_dim = 2 * model.config.output_dim() + bitmap_dim;
    let table_stats = TableStats::analyze(db);
    let cost_model = CostModel::default();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let head = Mlp::new(&[in_dim, 64, 32, 1], &mut rng);
    let norm = Normalizer::fit(&train.iter().map(|l| target.log_truth(l)).collect::<Vec<_>>());
    // Cache the frozen lower-layer states and bitmaps once.
    let cached: Vec<(Matrix, Vec<f32>, f32)> = train
        .iter()
        .map(|l| {
            let pq = model.prepare(&l.query);
            let lower = model.lower_states(&pq, nodes.as_ref());
            let mut bits = sampler.map(|s| sample_features(db, s, &l.query)).unwrap_or_default();
            bits.extend(plan_features(db, &table_stats, &cost_model, &l.query));
            (lower, bits, norm.encode(target.log_truth(l)))
        })
        .collect();
    // Fine-tune the last SQLBERT layer together with the head (§4.3.2).
    let mut params = model.last_layer_params();
    params.extend(head.params());
    let forward = |lower: &Matrix, bits: &[f32]| -> Tensor {
        let reps = model.last_layer_encode(lower, nodes.as_ref());
        head.forward(&preqr_features(&reps, bits, bitmap_dim))
    };
    let config = estimator_config(opts, 8, 5e-4, !valid.is_empty());
    // Scoped so the task's borrows of the head/nodes end before they are
    // moved into the predictor.
    let report = {
        let mut task = FnTask::new("est.preqr", train.len(), params, |idx, _rng| {
            let (lower, bits, t) = &cached[idx];
            let pred = forward(lower, bits);
            let loss = ops::huber_loss(&pred, &Matrix::full(1, 1, *t), 1.0);
            let scalar = f64::from(loss.value_clone().get(0, 0));
            loss.backward();
            StepOutput { loss: scalar, ..StepOutput::default() }
        })
        .with_eval(|| {
            validation_qerror(
                |lq| {
                    let pq = model.prepare(&lq.query);
                    let lower = model.lower_states(&pq, nodes.as_ref());
                    let mut bits =
                        sampler.map(|s| sample_features(db, s, &lq.query)).unwrap_or_default();
                    bits.extend(plan_features(db, &table_stats, &cost_model, &lq.query));
                    norm.decode(forward(&lower, &bits).value_clone().get(0, 0))
                },
                target,
                valid,
            )
        })
        .with_on_early_stop(|| obs::counter_add(obs::Metric::EstEarlyStops, 1));
        Trainer::new(config).fit(&mut task, &mut rng)
    };
    let history = report.val_history();
    let layer_weights = snapshot(&model.last_layer_params());
    restore(&model.last_layer_params(), &pretrained_layer);
    PreqrPredictor {
        db,
        model,
        head,
        nodes,
        sampler,
        bitmap_dim,
        norm,
        target,
        layer_weights,
        stats: table_stats,
        cost_model,
        label: label.to_string(),
        history,
    }
}

/// The NeuroCard-style data-driven estimator (cardinality only).
pub struct NeuroCardPredictor<'a> {
    est: SamplingEstimator<'a>,
}

impl<'a> NeuroCardPredictor<'a> {
    /// Builds the sampler-backed estimator.
    pub fn new(db: &'a Database, samples: usize, seed: u64) -> Self {
        Self { est: SamplingEstimator::new(db, samples, seed) }
    }
}

impl Estimator for NeuroCardPredictor<'_> {
    fn name(&self) -> String {
        "NeuroCard".into()
    }

    fn predict(&self, q: &Query) -> f64 {
        self.est.estimate(q).unwrap_or(1.0)
    }
}

/// NeuroCard + PreQR error correction (§4.5.1): a PreQR-headed model
/// learns the *residual* between NeuroCard's estimate and the truth.
pub struct CorrectedPredictor<'a> {
    base: NeuroCardPredictor<'a>,
    correction: PreqrPredictor<'a>,
}

impl Estimator for CorrectedPredictor<'_> {
    fn name(&self) -> String {
        "NeuroCard+PreQR".into()
    }

    fn predict(&self, q: &Query) -> f64 {
        let base = self.base.predict(q).max(1.0);
        // The correction head was trained on residual targets; its decode
        // returns 2^(log-residual + μ) — multiply onto the base estimate.
        let residual = self.correction.predict(q);
        (base * residual).max(1.0)
    }
}

/// Trains the NeuroCard+PreQR error-correction model: the head's target
/// is `truth / neurocard_estimate` in log space.
#[allow(clippy::too_many_arguments)]
pub fn train_corrected<'a>(
    db: &'a Database,
    model: &'a SqlBert,
    sampler: Option<&'a BitmapSampler>,
    train: &[LabeledQuery],
    valid: &[LabeledQuery],
    nc_samples: usize,
    epochs: usize,
    seed: u64,
) -> CorrectedPredictor<'a> {
    let base = NeuroCardPredictor::new(db, nc_samples, seed);
    let residual_of = |lq: &LabeledQuery| -> LabeledQuery {
        let est = base.predict(&lq.query).max(1.0);
        let ratio = (lq.card as f64 / est).max(1e-6);
        LabeledQuery {
            query: lq.query.clone(),
            // Reuse the cardinality channel to carry the ratio target;
            // clamped ≥1 semantics don't apply to ratios, so shift into
            // positive range via scaling by 2^20 and decode-side inverse.
            card: ((ratio * (1 << 20) as f64) as u64).max(1),
            cost: lq.cost,
            num_joins: lq.num_joins,
        }
    };
    let train_res: Vec<LabeledQuery> = train.iter().map(residual_of).collect();
    let valid_res: Vec<LabeledQuery> = valid.iter().map(residual_of).collect();
    let mut correction = train_preqr(
        db,
        model,
        sampler,
        &train_res,
        &valid_res,
        Target::Cardinality,
        epochs,
        seed,
        "NeuroCard+PreQR",
    );
    // Fold the 2^20 shift into the normalizer by adjusting its decode
    // through a wrapper mean shift.
    correction.norm = Normalizer {
        mean: correction.norm.mean - 20.0,
        std: correction.norm.std,
        lo: correction.norm.lo - 20.0,
        hi: correction.norm.hi - 20.0,
    };
    CorrectedPredictor { base, correction }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr::{PreqrConfig, ValueBuckets};
    use preqr_data::imdb::{generate, ImdbConfig};
    use preqr_data::workloads;

    fn setup() -> (Database, Vec<LabeledQuery>) {
        let db = generate(ImdbConfig::tiny());
        let qs = workloads::synthetic(&db, 120, 3);
        let labeled = workloads::label(&db, &qs, &CostModel::default());
        (db, labeled)
    }

    #[test]
    fn sample_features_have_fixed_width_and_track_joins() {
        let (db, labeled) = setup();
        let sampler = BitmapSampler::new(&db, 32, 1);
        let zero_join = labeled.iter().find(|l| l.num_joins == 0).expect("0-join query");
        let two_join = labeled.iter().find(|l| l.num_joins == 2).expect("2-join query");
        let f0 = sample_features(&db, &sampler, &zero_join.query);
        let f2 = sample_features(&db, &sampler, &two_join.query);
        assert_eq!(f0.len(), SAMPLE_FEATURES);
        assert_eq!(f2.len(), SAMPLE_FEATURES);
        // #joins feature (index 5) reflects the query.
        assert_eq!(f0[5], 0.0);
        assert_eq!(f2[5], 2.0);
        // More tables → larger Σ log |T|.
        assert!(f2[0] > f0[0]);
    }

    #[test]
    fn plan_features_are_log_scale_and_finite() {
        let (db, labeled) = setup();
        let stats = TableStats::analyze(&db);
        let cm = CostModel::default();
        for lq in labeled.iter().take(20) {
            let f = plan_features(&db, &stats, &cm, &lq.query);
            assert_eq!(f.len(), PLAN_FEATURES);
            assert!(f.iter().all(|v| v.is_finite() && *v >= 0.0 && *v < 64.0), "{f:?}");
        }
    }

    #[test]
    fn normalizer_decode_is_clamped_to_training_range() {
        let n = Normalizer::fit(&[4.0, 6.0, 8.0]);
        // Far beyond the training range: clamped at hi = 8 + 3 = 11.
        assert!(n.decode(100.0) <= 2f64.powi(11) + 1.0);
        assert!(n.decode(-100.0) >= 2f64.powi(3) - 1.0);
    }

    #[test]
    fn normalizer_round_trips() {
        let n = Normalizer::fit(&[1.0, 3.0, 5.0]);
        let x = n.encode(4.0);
        assert!((n.decode(x) - 16.0).abs() < 0.01, "2^4 = 16");
    }

    #[test]
    fn pg_baseline_reports_for_both_targets() {
        let (db, labeled) = setup();
        let stats = TableStats::analyze(&db);
        for target in [Target::Cardinality, Target::Cost] {
            let pg = PgBaseline::new(&db, &stats, target);
            let s = evaluate(&pg, target, &labeled[..40]);
            assert!(s.mean >= 1.0 && s.mean.is_finite());
        }
    }

    #[test]
    fn mscn_training_fits_training_set_better_than_mean_predictor() {
        let (db, labeled) = setup();
        let train = &labeled[..100];
        // Evaluate on the training set with no validation early stopping:
        // a trained model must beat the geometric-mean predictor (what 0
        // epochs decodes to, since the head outputs ~0 before training).
        let valid: &[LabeledQuery] = &[];
        let trained = train_mscn(&db, None, train, valid, Target::Cardinality, 40, 1);
        let trained_stats = evaluate(&trained, Target::Cardinality, train);
        let untrained = train_mscn(&db, None, train, valid, Target::Cardinality, 0, 1);
        let untrained_stats = evaluate(&untrained, Target::Cardinality, train);
        assert!(
            trained_stats.mean < untrained_stats.mean * 0.9,
            "training must fit the train set: {} vs {}",
            trained_stats.mean,
            untrained_stats.mean
        );
    }

    #[test]
    fn preqr_pipeline_runs_end_to_end() {
        let (db, labeled) = setup();
        let corpus: Vec<Query> = labeled.iter().map(|l| l.query.clone()).collect();
        let mut buckets = ValueBuckets::new(6);
        for t in db.schema().tables() {
            for c in &t.columns {
                if let Some(col) = db.column(&t.name, &c.name) {
                    let samples: Vec<f64> = (0..col.len()).filter_map(|r| col.get_f64(r)).collect();
                    if !samples.is_empty() {
                        buckets.insert(&t.name, &c.name, samples);
                    }
                }
            }
        }
        let mut model = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::test());
        model.pretrain(&corpus[..40], 1, 1e-3);
        let (train, rest) = labeled.split_at(80);
        let (valid, test) = rest.split_at(20);
        let pred =
            train_preqr(&db, &model, None, train, valid, Target::Cardinality, 3, 2, "PreQRCard");
        let stats = evaluate(&pred, Target::Cardinality, test);
        assert!(stats.mean.is_finite() && stats.mean >= 1.0);
        assert_eq!(pred.name(), "PreQRCard");
    }

    #[test]
    fn corrected_predictor_improves_or_matches_neurocard_floor() {
        let (db, labeled) = setup();
        let nc = NeuroCardPredictor::new(&db, 200, 3);
        let stats = evaluate(&nc, Target::Cardinality, &labeled[..30]);
        assert!(stats.mean >= 1.0);
    }
}
