//! PostgreSQL-style analytic cardinality estimator.
//!
//! Reproduces the algorithmic behaviour (and therefore the failure modes)
//! of the `PG` baseline rows in Tables 7–11: per-predicate selectivities
//! from histograms/MCVs, multiplied under the *attribute independence*
//! assumption, and PK–FK join selectivity `1 / max(nd(a), nd(b))`.

use preqr_sql::ast::{CmpOp, Expr, Query, Scalar, SelectStmt, Value};

use crate::bind::{Bindings, ExecError};
use crate::stats::TableStats;
use crate::storage::{ColumnData, Database};

/// Default selectivity for LIKE predicates with wildcards (PG's
/// `DEFAULT_MATCH_SEL` is 0.005; patterns anchored with leading `%` get a
/// larger default here because the JOB-style workloads use contains-
/// patterns heavily).
const LIKE_SEL: f64 = 0.05;
/// Default selectivity for IN-subquery predicates.
const IN_SUBQUERY_SEL: f64 = 0.1;
/// Default when nothing is known.
const DEFAULT_SEL: f64 = 0.33;

/// A per-step cardinality estimate mirroring the executor's plan shape.
#[derive(Clone, Debug, Default)]
pub struct PlanEstimate {
    /// Estimated filtered size of each bound table.
    pub filtered: Vec<f64>,
    /// Estimated result size after each join step.
    pub joins: Vec<f64>,
    /// Final estimated join cardinality.
    pub total: f64,
}

/// The estimator. Borrows the database only for string-literal dictionary
/// lookups; all estimates come from [`TableStats`].
pub struct PgEstimator<'a> {
    db: &'a Database,
    stats: &'a TableStats,
}

impl<'a> PgEstimator<'a> {
    /// Creates an estimator over analyzed statistics.
    pub fn new(db: &'a Database, stats: &'a TableStats) -> Self {
        Self { db, stats }
    }

    /// Estimates the join cardinality of a query (UNION members summed).
    ///
    /// # Errors
    /// Name-resolution failures.
    pub fn estimate(&self, q: &Query) -> Result<f64, ExecError> {
        let mut total = 0.0;
        for s in q.selects() {
            total += self.estimate_plan(s)?.total;
        }
        Ok(total.max(1.0))
    }

    /// Estimates per-step cardinalities for one SELECT.
    ///
    /// # Errors
    /// Name-resolution failures.
    pub fn estimate_plan(&self, stmt: &SelectStmt) -> Result<PlanEstimate, ExecError> {
        let bindings = Bindings::of(stmt, self.db.schema())?;
        let mut sel: Vec<f64> = vec![1.0; bindings.len()];
        let mut joins: Vec<(usize, usize, f64)> = Vec::new();
        let mut conjuncts: Vec<&Expr> = Vec::new();
        if let Some(w) = &stmt.where_clause {
            conjuncts.extend(w.conjuncts());
        }
        for j in &stmt.joins {
            conjuncts.extend(j.on.conjuncts());
        }
        for c in conjuncts {
            self.apply_conjunct(c, &bindings, &mut sel, &mut joins)?;
        }
        let filtered: Vec<f64> = (0..bindings.len())
            .map(|t| {
                let rows = self.stats.row_count(bindings.table_name(t)) as f64;
                (rows * sel[t]).max(1.0)
            })
            .collect();
        let mut join_sizes = Vec::with_capacity(joins.len());
        // Apply join selectivities progressively to produce per-step sizes
        // comparable to the executor's step cardinalities.
        let mut acc = filtered.first().copied().unwrap_or(1.0);
        let mut bound = vec![false; bindings.len()];
        if !bound.is_empty() {
            bound[0] = true;
        }
        for &(a, b, s) in &joins {
            let new = if bound[a] && bound[b] {
                acc * s
            } else {
                let t = if bound[a] { b } else { a };
                bound[t] = true;
                acc * filtered[t] * s
            };
            acc = new.max(1.0);
            join_sizes.push(acc);
        }
        // Tables never joined multiply in as cross products.
        for (t, &bnd) in bound.iter().enumerate() {
            if !bnd {
                acc *= filtered[t];
            }
        }
        Ok(PlanEstimate { filtered, joins: join_sizes, total: acc.max(1.0) })
    }

    fn apply_conjunct(
        &self,
        c: &Expr,
        bindings: &Bindings,
        sel: &mut [f64],
        joins: &mut Vec<(usize, usize, f64)>,
    ) -> Result<(), ExecError> {
        // Equi-join?
        if let Expr::Cmp { left: Scalar::Column(a), op: CmpOp::Eq, right: Scalar::Column(b) } = c {
            let ba = bindings.resolve(a, self.db.schema())?;
            let bb = bindings.resolve(b, self.db.schema())?;
            if ba.table != bb.table {
                let nd_a = self
                    .col_stats(bindings, ba.table, &a.column)
                    .map_or(1.0, |s| s.n_distinct as f64);
                let nd_b = self
                    .col_stats(bindings, bb.table, &b.column)
                    .map_or(1.0, |s| s.n_distinct as f64);
                let s = 1.0 / nd_a.max(nd_b).max(1.0);
                joins.push((ba.table, bb.table, s));
                return Ok(());
            }
        }
        // Single-table predicate: attribute it to its table.
        let cols = c.columns();
        let table = match cols.first() {
            Some(col) => bindings.resolve(col, self.db.schema())?.table,
            None => return Ok(()),
        };
        let s = self.predicate_selectivity(c, bindings, table)?;
        sel[table] *= s.clamp(1e-9, 1.0);
        Ok(())
    }

    fn col_stats(
        &self,
        bindings: &Bindings,
        table: usize,
        column: &str,
    ) -> Option<&crate::stats::ColumnStats> {
        self.stats.column(bindings.table_name(table), column)
    }

    fn literal_as_f64(&self, bindings: &Bindings, table: usize, column: &str, v: &Value) -> f64 {
        match v {
            Value::Str(s) => {
                // Map the string to its dictionary code, matching how
                // string MCVs are stored.
                match self.db.column(bindings.table_name(table), column) {
                    Some(ColumnData::Str { dict, .. }) => dict.code(s).map_or(-1.0, |c| c as f64),
                    _ => -1.0,
                }
            }
            other => other.as_f64().unwrap_or(0.0),
        }
    }

    fn predicate_selectivity(
        &self,
        e: &Expr,
        bindings: &Bindings,
        table: usize,
    ) -> Result<f64, ExecError> {
        Ok(match e {
            Expr::And(a, b) => {
                // Independence assumption — the key simplification that
                // makes PG underestimate correlated predicates.
                self.predicate_selectivity(a, bindings, table)?
                    * self.predicate_selectivity(b, bindings, table)?
            }
            Expr::Or(a, b) => {
                let sa = self.predicate_selectivity(a, bindings, table)?;
                let sb = self.predicate_selectivity(b, bindings, table)?;
                (sa + sb - sa * sb).clamp(0.0, 1.0)
            }
            Expr::Not(a) => 1.0 - self.predicate_selectivity(a, bindings, table)?,
            Expr::Cmp { left: Scalar::Column(c), op, right: Scalar::Value(v) } => {
                self.cmp_selectivity(bindings, table, &c.column, *op, v)
            }
            Expr::Cmp { left: Scalar::Value(v), op, right: Scalar::Column(c) } => {
                self.cmp_selectivity(bindings, table, &c.column, flip(*op), v)
            }
            Expr::Cmp { .. } => DEFAULT_SEL,
            Expr::Between { col, low, high } => {
                let stats = self.col_stats(bindings, table, &col.column);
                match (stats, low.as_f64(), high.as_f64()) {
                    (Some(s), Some(l), Some(h)) => {
                        (s.fraction_le(h) - s.fraction_le(l - 1e-9)).clamp(0.0, 1.0)
                    }
                    _ => DEFAULT_SEL,
                }
            }
            Expr::InList { col, values, negated } => {
                let s: f64 = values
                    .iter()
                    .map(|v| self.cmp_selectivity(bindings, table, &col.column, CmpOp::Eq, v))
                    .sum();
                let s = s.clamp(0.0, 1.0);
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            Expr::InSubquery { negated, .. } => {
                if *negated {
                    1.0 - IN_SUBQUERY_SEL
                } else {
                    IN_SUBQUERY_SEL
                }
            }
            Expr::Like { negated, .. } => {
                if *negated {
                    1.0 - LIKE_SEL
                } else {
                    LIKE_SEL
                }
            }
            Expr::IsNull { negated, .. } => {
                // No NULLs in generated data.
                if *negated {
                    1.0
                } else {
                    0.0
                }
            }
        })
    }

    fn cmp_selectivity(
        &self,
        bindings: &Bindings,
        table: usize,
        column: &str,
        op: CmpOp,
        v: &Value,
    ) -> f64 {
        let Some(stats) = self.col_stats(bindings, table, column) else {
            return DEFAULT_SEL;
        };
        let x = self.literal_as_f64(bindings, table, column, v);
        match op {
            CmpOp::Eq => stats.eq_selectivity(x),
            CmpOp::Ne => 1.0 - stats.eq_selectivity(x),
            CmpOp::Lt => {
                if stats.histogram.is_empty() {
                    DEFAULT_SEL
                } else {
                    stats.fraction_le(x) - stats.eq_selectivity(x)
                }
            }
            CmpOp::Le => {
                if stats.histogram.is_empty() {
                    DEFAULT_SEL
                } else {
                    stats.fraction_le(x)
                }
            }
            CmpOp::Gt => {
                if stats.histogram.is_empty() {
                    DEFAULT_SEL
                } else {
                    1.0 - stats.fraction_le(x)
                }
            }
            CmpOp::Ge => {
                if stats.histogram.is_empty() {
                    DEFAULT_SEL
                } else {
                    1.0 - stats.fraction_le(x) + stats.eq_selectivity(x)
                }
            }
        }
        .clamp(0.0, 1.0)
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TableStats;
    use crate::storage::{Database, Datum};
    use preqr_schema::{Column, ColumnType, Schema, Table};
    use preqr_sql::parser::parse;

    fn db() -> Database {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "t",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("x", ColumnType::Int),
                Column::new("name", ColumnType::Varchar),
            ],
        ));
        let mut db = Database::new(s);
        for i in 0..1000i64 {
            db.insert(
                "t",
                &[Datum::Int(i), Datum::Int(i % 100), Datum::Str(format!("n{}", i % 4))],
            );
        }
        db
    }

    fn est_sel(sql: &str) -> f64 {
        let database = db();
        let stats = TableStats::analyze(&database);
        let est = PgEstimator::new(&database, &stats);
        est.estimate(&parse(sql).unwrap()).unwrap() / 1000.0
    }

    #[test]
    fn range_selectivity_tracks_histogram() {
        let sel = est_sel("SELECT COUNT(*) FROM t WHERE t.x < 50");
        assert!((sel - 0.5).abs() < 0.1, "x<50 should be ~half: {sel}");
        let sel = est_sel("SELECT COUNT(*) FROM t WHERE t.x >= 90");
        assert!((sel - 0.1).abs() < 0.07, "x>=90 should be ~10%: {sel}");
    }

    #[test]
    fn equality_uses_mcv_or_uniformity() {
        let sel = est_sel("SELECT COUNT(*) FROM t WHERE t.x = 7");
        assert!((sel - 0.01).abs() < 0.01, "x=7 ~1%: {sel}");
        let sel = est_sel("SELECT COUNT(*) FROM t WHERE t.name = 'n1'");
        assert!((sel - 0.25).abs() < 0.05, "string MCV ~25%: {sel}");
    }

    #[test]
    fn in_list_sums_equalities() {
        let one = est_sel("SELECT COUNT(*) FROM t WHERE t.x = 1");
        let three = est_sel("SELECT COUNT(*) FROM t WHERE t.x IN (1, 2, 3)");
        assert!((three - 3.0 * one).abs() < 0.02, "IN sums eq sels: {three} vs {one}");
    }

    #[test]
    fn or_uses_inclusion_exclusion_and_not_complements() {
        let a = est_sel("SELECT COUNT(*) FROM t WHERE t.x < 50");
        let or = est_sel("SELECT COUNT(*) FROM t WHERE (t.x < 50 OR t.x < 50)");
        let expected = a + a - a * a;
        assert!((or - expected).abs() < 0.02, "{or} vs {expected}");
        let not = est_sel("SELECT COUNT(*) FROM t WHERE NOT (t.x < 50)");
        assert!((not + a - 1.0).abs() < 0.02);
    }

    #[test]
    fn like_and_subquery_use_defaults() {
        let like = est_sel("SELECT COUNT(*) FROM t WHERE t.name LIKE '%z%'");
        assert!((like - 0.05).abs() < 1e-6);
        let sub = est_sel("SELECT COUNT(*) FROM t WHERE t.x IN (SELECT id FROM t WHERE t.id < 3)");
        assert!((sub - 0.1).abs() < 1e-6);
    }

    #[test]
    fn between_matches_range_difference() {
        let sel = est_sel("SELECT COUNT(*) FROM t WHERE t.x BETWEEN 20 AND 39");
        assert!((sel - 0.2).abs() < 0.07, "20..39 is ~20%: {sel}");
    }

    #[test]
    fn union_estimates_sum_branches() {
        let single = est_sel("SELECT COUNT(*) FROM t WHERE t.x < 50");
        let union =
            est_sel("SELECT id FROM t WHERE t.x < 50 UNION SELECT id FROM t WHERE t.x < 50");
        assert!((union - 2.0 * single).abs() < 0.02);
    }
}
