//! CI train-smoke: one pretraining epoch plus one estimation fine-tune
//! through the shared `preqr-train` Trainer, and the pretrain-level
//! checkpoint/halt/resume path. Run under `PREQR_THREADS={1,8}` by the
//! CI `train-smoke` job — every assertion here is thread-invariant.

use preqr::{PreqrConfig, PretrainOptions, SqlBert};
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads;
use preqr_engine::CostModel;
use preqr_nn::layers::Module;
use preqr_tasks::estimation::{train_mscn, Target};
use preqr_tasks::setup::value_buckets_from_db;
use preqr_train::CheckpointConfig;

#[test]
fn one_pretrain_epoch_and_one_finetune_run() {
    let db = generate(ImdbConfig::tiny());
    let corpus = workloads::pretrain_corpus(&db, 16, 7);
    let buckets = value_buckets_from_db(&db, 8);
    let mut m = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::test());
    let stats = m.pretrain(&corpus, 1, 1e-3);
    assert_eq!(stats.len(), 1);
    assert!(stats[0].loss.is_finite() && stats[0].loss > 0.0);
    assert!(stats[0].samples == corpus.len());

    let qs = workloads::synthetic(&db, 50, 3);
    let labeled = workloads::label(&db, &qs, &CostModel::default());
    let (train, valid) = labeled.split_at(40);
    let pred = train_mscn(&db, None, train, valid, Target::Cardinality, 2, 5);
    assert_eq!(pred.history.len(), 2);
    assert!(pred.history.iter().all(|v| v.is_finite()));
}

/// Halting a pre-train mid-run and resuming from the periodic
/// checkpoint reproduces the uninterrupted run bit-for-bit (both runs
/// share the checkpoint cadence, so the RNG reseed points line up).
#[test]
fn pretrain_halt_resume_matches_uninterrupted() {
    const EPOCHS: usize = 2;
    let db = generate(ImdbConfig::tiny());
    // 20 examples / chunk 8 → 3 steps per epoch, 6 total; checkpoints
    // land at steps 2, 4, 6 and the halt at 3 interrupts mid-epoch.
    let corpus = workloads::pretrain_corpus(&db, 20, 7);
    let buckets = value_buckets_from_db(&db, 8);
    let dir = std::env::temp_dir();
    let base_path = dir.join(format!("preqr_smoke_base_{}.ckpt", std::process::id()));
    let int_path = dir.join(format!("preqr_smoke_int_{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&base_path);
    let _ = std::fs::remove_file(&int_path);

    let mut base = SqlBert::new(&corpus, db.schema(), buckets.clone(), PreqrConfig::test());
    let mut opts = PretrainOptions::new(EPOCHS, 1e-3);
    opts.checkpoint = Some(CheckpointConfig::new(base_path.clone(), 2));
    let base_stats = base.pretrain_with(&corpus, opts);

    let mut resumed = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::test());
    let mut opts = PretrainOptions::new(EPOCHS, 1e-3);
    opts.checkpoint = Some(CheckpointConfig::new(int_path.clone(), 2));
    opts.halt_after_steps = Some(3);
    let partial = resumed.pretrain_with(&corpus, opts.clone());
    assert!(partial.len() < EPOCHS, "halt must interrupt the run");

    opts.halt_after_steps = None;
    let resumed_stats = resumed.pretrain_with(&corpus, opts);

    let _ = std::fs::remove_file(&base_path);
    let _ = std::fs::remove_file(&int_path);

    assert_eq!(base_stats, resumed_stats, "loss/accuracy trajectory after resume");
    let (a, b) = (base.params(), resumed.params());
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        let (xv, yv) = (x.value_clone(), y.value_clone());
        assert_eq!(xv.shape(), yv.shape(), "param {i} shape");
        let same = xv.data().iter().zip(yv.data()).all(|(p, q)| p.to_bits() == q.to_bits());
        assert!(same, "param {i} diverged after halt/resume");
    }
}
