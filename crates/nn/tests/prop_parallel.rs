//! Property-based bit-identity tests: the packed/parallel kernel fast paths
//! must produce *bitwise* identical results to the retained serial reference
//! kernels for every shape and thread count.
//!
//! This is the determinism contract of `preqr_nn::parallel`: work is
//! partitioned by output rows, so each output element's floating-point
//! reduction chain is the same as the serial kernel's, regardless of
//! `PREQR_THREADS`.

use proptest::prelude::*;

use preqr_nn::{parallel, Matrix};

fn bits(m: &Matrix) -> Vec<u32> {
    m.data().iter().map(|x| x.to_bits()).collect()
}

/// Shapes that straddle the `PAR_MIN_FMAS`/`PAR_MIN_ELEMS` dispatch
/// thresholds as well as comfortably exceeding them, plus awkward remainders
/// for the MR×NR tile edge paths.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    prop_oneof![
        // Small/general: exercises the serial path and the threshold boundary.
        (1usize..48, 1usize..48, 1usize..48),
        // Forced past the FLOP threshold: exercises the packed/parallel path.
        (17usize..96, 33usize..80, 33usize..80),
        // Exactly-at and adjacent-to the 2^16 FMA threshold.
        Just((32, 32, 64)),
        Just((31, 33, 63)),
        Just((33, 32, 64)),
    ]
}

fn matrix_of(rows: usize, cols: usize, seed: Vec<f32>) -> Matrix {
    let data = (0..rows * cols).map(|i| seed[i % seed.len()] + (i % 7) as f32 * 0.125).collect();
    Matrix::from_vec(rows, cols, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `matmul`, `matmul_transpose_b`, and `transpose_a_matmul` are
    /// bit-identical to their serial references at 1, 2, and 8 threads.
    #[test]
    fn matmul_family_bit_identical(
        (m, k, n) in dims(),
        seed in proptest::collection::vec(-2.0f32..2.0, 8..32),
    ) {
        let a = matrix_of(m, k, seed.clone());
        let b = matrix_of(k, n, seed.clone());
        let bt = matrix_of(n, k, seed.clone());
        let c = matrix_of(m, n, seed);
        let want_ab = bits(&a.matmul_serial(&b));
        let want_abt = bits(&a.matmul_transpose_b_serial(&bt));
        let want_atc = bits(&a.transpose_a_matmul_serial(&c));
        for threads in [1usize, 2, 8] {
            parallel::set_thread_override(Some(threads));
            let got_ab = bits(&a.matmul(&b));
            let got_abt = bits(&a.matmul_transpose_b(&bt));
            let got_atc = bits(&a.transpose_a_matmul(&c));
            parallel::set_thread_override(None);
            prop_assert_eq!(&got_ab, &want_ab, "matmul {}x{}x{} at {} threads", m, k, n, threads);
            prop_assert_eq!(&got_abt, &want_abt, "matmul_transpose_b at {} threads", threads);
            prop_assert_eq!(&got_atc, &want_atc, "transpose_a_matmul at {} threads", threads);
        }
    }

    /// Row-wise softmax is bit-identical to the serial reference across
    /// thread counts, including shapes past the element threshold.
    #[test]
    fn softmax_bit_identical(
        rows in 1usize..96,
        cols in 1usize..96,
        seed in proptest::collection::vec(-4.0f32..4.0, 8..32),
    ) {
        let base = matrix_of(rows, cols, seed);
        let mut want = base.clone();
        want.softmax_rows_inplace_serial();
        let want = bits(&want);
        for threads in [1usize, 2, 8] {
            parallel::set_thread_override(Some(threads));
            let mut got = base.clone();
            got.softmax_rows_inplace();
            parallel::set_thread_override(None);
            prop_assert_eq!(bits(&got), want.clone(), "softmax {}x{} at {} threads", rows, cols, threads);
        }
    }

    /// Parallel element-wise kernels (add_assign, add_scaled_assign, map,
    /// zip_map, scale_assign) are bit-identical across thread counts. Uses
    /// buffers past `PAR_MIN_ELEMS` so the pool path actually runs.
    #[test]
    fn elementwise_bit_identical(
        rows in 64usize..160,
        cols in 256usize..320,
        seed in proptest::collection::vec(-2.0f32..2.0, 8..32),
        scale in -2.0f32..2.0,
    ) {
        let a = matrix_of(rows, cols, seed.clone());
        let b = matrix_of(rows, cols, seed);
        parallel::set_thread_override(Some(1));
        let mut want_add = a.clone();
        want_add.add_assign(&b);
        let mut want_axpy = a.clone();
        want_axpy.add_scaled_assign(&b, scale);
        let want_map = a.map(|x| x * scale + 1.0);
        let want_zip = a.zip_map(&b, |x, y| x * y + scale);
        parallel::set_thread_override(None);
        for threads in [2usize, 8] {
            parallel::set_thread_override(Some(threads));
            let mut got_add = a.clone();
            got_add.add_assign(&b);
            let mut got_axpy = a.clone();
            got_axpy.add_scaled_assign(&b, scale);
            let got_map = a.map(|x| x * scale + 1.0);
            let got_zip = a.zip_map(&b, |x, y| x * y + scale);
            parallel::set_thread_override(None);
            prop_assert_eq!(bits(&got_add), bits(&want_add), "add_assign at {} threads", threads);
            prop_assert_eq!(bits(&got_axpy), bits(&want_axpy), "add_scaled_assign at {} threads", threads);
            prop_assert_eq!(bits(&got_map), bits(&want_map), "map at {} threads", threads);
            prop_assert_eq!(bits(&got_zip), bits(&want_zip), "zip_map at {} threads", threads);
        }
    }
}

/// The old fast-path skip `if a_ik == 0.0 { continue; }` silently dropped
/// `0 · inf` and `0 · NaN` contributions; IEEE 754 requires them to
/// propagate as NaN. Both serial and packed paths must agree.
#[test]
fn zero_times_inf_propagates_nan() {
    let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
    let b = Matrix::from_vec(2, 1, vec![f32::INFINITY, 1.0]);
    assert!(a.matmul(&b).get(0, 0).is_nan());
    assert!(a.matmul_serial(&b).get(0, 0).is_nan());
    let big_a = Matrix::from_fn(40, 64, |i, j| if j == 0 { 0.0 } else { (i + j) as f32 * 0.01 });
    let big_b = Matrix::from_fn(64, 48, |i, _| if i == 0 { f32::NEG_INFINITY } else { 1.0 });
    let fast = big_a.matmul(&big_b);
    let slow = big_a.matmul_serial(&big_b);
    assert!(fast.get(0, 0).is_nan(), "0 * -inf must contribute NaN on the packed path");
    assert_eq!(
        fast.data().iter().map(|x| x.is_nan()).collect::<Vec<_>>(),
        slow.data().iter().map(|x| x.is_nan()).collect::<Vec<_>>(),
    );
}
